// Package dnsbl implements a Spamhaus-style DNS blocklist with the
// dynamics the paper measures in Figure 6: spamtrap-driven listing,
// slow and noisy delisting ("removing the host from the blocklist is
// not always simple and timely"), and repeated relisting of shared MTAs
// whose users keep sending spam. Receiver MTAs query it the way real
// ones query zen.spamhaus.org: by reversed-IP name against the simulated
// DNS, or directly through Listed.
package dnsbl

import (
	"math"
	"strings"
	"sync"
	"time"

	"repro/internal/simrng"
)

// Config tunes listing dynamics.
type Config struct {
	// Zone is the DNSBL zone name (e.g. "zen.dnsbl.example").
	Zone string
	// ReportThreshold is the number of spamtrap reports within
	// ReportWindow that triggers a listing.
	ReportThreshold int
	ReportWindow    time.Duration
	// DelistMeanHours / DelistSigma parameterize the log-normal delisting
	// delay. The paper observes multi-day tails.
	DelistMeanHours float64
	DelistSigma     float64
}

// DefaultConfig mirrors the aggressive listing / slow delisting regime
// that keeps roughly half of a busy shared-MTA fleet listed on any day.
func DefaultConfig() Config {
	return Config{
		Zone:            "zen.dnsbl.example",
		ReportThreshold: 3,
		ReportWindow:    24 * time.Hour,
		DelistMeanHours: 30,
		DelistSigma:     0.9,
	}
}

type window struct {
	from, until time.Time
}

// Blocklist is the list state. It is safe for concurrent use.
type Blocklist struct {
	cfg Config

	mu       sync.Mutex
	rng      *simrng.RNG
	reports  map[string][]time.Time
	listings map[string][]window
}

// New creates a blocklist with the given config and RNG (for delisting
// delays).
func New(cfg Config, rng *simrng.RNG) *Blocklist {
	if cfg.ReportThreshold <= 0 {
		cfg.ReportThreshold = 3
	}
	if cfg.ReportWindow <= 0 {
		cfg.ReportWindow = 24 * time.Hour
	}
	if cfg.DelistMeanHours <= 0 {
		cfg.DelistMeanHours = 30
	}
	return &Blocklist{
		cfg:      cfg,
		rng:      rng,
		reports:  make(map[string][]time.Time),
		listings: make(map[string][]window),
	}
}

// Zone returns the DNSBL zone name.
func (b *Blocklist) Zone() string { return b.cfg.Zone }

// ReportSpam records a spamtrap hit or user report for ip at time t.
// Crossing the report threshold lists the IP; the listing lasts a
// log-normally distributed delay whose median is DelistMeanHours.
// Reports while already listed extend nothing (the listing window is
// already running) but still count toward a relisting after delisting.
func (b *Blocklist) ReportSpam(ip string, t time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.listedLocked(ip, t) {
		return
	}
	rs := b.reports[ip]
	cutoff := t.Add(-b.cfg.ReportWindow)
	kept := rs[:0]
	for _, r := range rs {
		if r.After(cutoff) {
			kept = append(kept, r)
		}
	}
	kept = append(kept, t)
	b.reports[ip] = kept
	if len(kept) >= b.cfg.ReportThreshold {
		hours := b.rng.LogNormal(lnMu(b.cfg.DelistMeanHours, b.cfg.DelistSigma), b.cfg.DelistSigma)
		until := t.Add(time.Duration(hours * float64(time.Hour)))
		b.listings[ip] = append(b.listings[ip], window{from: t, until: until})
		b.reports[ip] = nil
	}
}

// lnMu converts a desired median (in the same unit as the output) to the
// mu parameter of a log-normal distribution: median = exp(mu).
func lnMu(median, _ float64) float64 {
	if median <= 0 {
		median = 1
	}
	return math.Log(median)
}

// Listed reports whether ip is on the blocklist at time t.
func (b *Blocklist) Listed(ip string, t time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.listedLocked(ip, t)
}

func (b *Blocklist) listedLocked(ip string, t time.Time) bool {
	ws := b.listings[ip]
	for i := len(ws) - 1; i >= 0; i-- {
		w := ws[i]
		if !t.Before(w.from) && t.Before(w.until) {
			return true
		}
		if w.until.Before(t.Add(-30 * 24 * time.Hour)) {
			break // older windows cannot cover t
		}
	}
	return false
}

// QueryName returns the DNSBL query name for ip in the standard
// reversed-octet form, e.g. "4.3.2.1.zen.dnsbl.example" for 1.2.3.4.
func (b *Blocklist) QueryName(ip string) string {
	octets := strings.Split(ip, ".")
	if len(octets) != 4 {
		return ip + "." + b.cfg.Zone
	}
	return octets[3] + "." + octets[2] + "." + octets[1] + "." + octets[0] + "." + b.cfg.Zone
}

// Windows returns the listing windows recorded for ip, for analysis and
// tests.
func (b *Blocklist) Windows(ip string) []struct{ From, Until time.Time } {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]struct{ From, Until time.Time }, len(b.listings[ip]))
	for i, w := range b.listings[ip] {
		out[i] = struct{ From, Until time.Time }{w.from, w.until}
	}
	return out
}

// ListedCount returns how many of the given IPs are listed at t —
// Figure 6's black line (number of proxy MTAs blocklisted per day).
func (b *Blocklist) ListedCount(ips []string, t time.Time) int {
	n := 0
	for _, ip := range ips {
		if b.Listed(ip, t) {
			n++
		}
	}
	return n
}
