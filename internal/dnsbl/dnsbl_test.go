package dnsbl

import (
	"testing"
	"time"

	"repro/internal/simrng"
)

var t0 = time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)

func newTestList() *Blocklist {
	return New(Config{
		Zone:            "zen.dnsbl.example",
		ReportThreshold: 3,
		ReportWindow:    24 * time.Hour,
		DelistMeanHours: 30,
		DelistSigma:     0.5,
	}, simrng.New(1))
}

func TestListingAfterThreshold(t *testing.T) {
	b := newTestList()
	ip := "5.0.0.1"
	b.ReportSpam(ip, t0)
	b.ReportSpam(ip, t0.Add(time.Hour))
	if b.Listed(ip, t0.Add(2*time.Hour)) {
		t.Fatal("listed below threshold")
	}
	b.ReportSpam(ip, t0.Add(2*time.Hour))
	if !b.Listed(ip, t0.Add(2*time.Hour)) {
		t.Fatal("not listed after 3 reports")
	}
}

func TestReportsOutsideWindowDoNotCount(t *testing.T) {
	b := newTestList()
	ip := "5.0.0.2"
	b.ReportSpam(ip, t0)
	b.ReportSpam(ip, t0.Add(30*time.Hour)) // first report expired
	b.ReportSpam(ip, t0.Add(31*time.Hour))
	if b.Listed(ip, t0.Add(31*time.Hour)) {
		t.Fatal("listed despite stale first report")
	}
	b.ReportSpam(ip, t0.Add(32*time.Hour))
	if !b.Listed(ip, t0.Add(32*time.Hour)) {
		t.Fatal("three in-window reports should list")
	}
}

func TestDelisting(t *testing.T) {
	b := newTestList()
	ip := "5.0.0.3"
	for i := 0; i < 3; i++ {
		b.ReportSpam(ip, t0.Add(time.Duration(i)*time.Hour))
	}
	ws := b.Windows(ip)
	if len(ws) != 1 {
		t.Fatalf("want 1 window, got %d", len(ws))
	}
	if !b.Listed(ip, ws[0].Until.Add(-time.Minute)) {
		t.Error("should be listed just before window end")
	}
	if b.Listed(ip, ws[0].Until.Add(time.Minute)) {
		t.Error("should be delisted after window end")
	}
	if d := ws[0].Until.Sub(ws[0].From); d < 2*time.Hour || d > 30*24*time.Hour {
		t.Errorf("delist delay %v out of plausible range", d)
	}
}

func TestRelisting(t *testing.T) {
	b := newTestList()
	ip := "5.0.0.4"
	for i := 0; i < 3; i++ {
		b.ReportSpam(ip, t0.Add(time.Duration(i)*time.Minute))
	}
	ws := b.Windows(ip)
	after := ws[0].Until.Add(time.Hour)
	for i := 0; i < 3; i++ {
		b.ReportSpam(ip, after.Add(time.Duration(i)*time.Minute))
	}
	if got := len(b.Windows(ip)); got != 2 {
		t.Fatalf("want 2 windows after relisting, got %d", got)
	}
	if !b.Listed(ip, after.Add(5*time.Minute)) {
		t.Error("should be relisted")
	}
}

func TestReportsWhileListedIgnored(t *testing.T) {
	b := newTestList()
	ip := "5.0.0.5"
	for i := 0; i < 3; i++ {
		b.ReportSpam(ip, t0.Add(time.Duration(i)*time.Minute))
	}
	// Many more reports while listed must not create more windows.
	for i := 0; i < 10; i++ {
		b.ReportSpam(ip, t0.Add(time.Duration(10+i)*time.Minute))
	}
	if got := len(b.Windows(ip)); got != 1 {
		t.Errorf("windows while listed: %d want 1", got)
	}
}

func TestDelistDelayMedianRoughlyConfigured(t *testing.T) {
	b := newTestList()
	var durations []time.Duration
	for i := 0; i < 500; i++ {
		ip := "6.0.0." + string(rune('0'+i%10)) + "x" + time.Duration(i).String()
		start := t0.Add(time.Duration(i) * 100 * time.Hour)
		for j := 0; j < 3; j++ {
			b.ReportSpam(ip, start.Add(time.Duration(j)*time.Minute))
		}
		ws := b.Windows(ip)
		durations = append(durations, ws[len(ws)-1].Until.Sub(ws[len(ws)-1].From))
	}
	// Median should be near 30h.
	below := 0
	for _, d := range durations {
		if d < 30*time.Hour {
			below++
		}
	}
	frac := float64(below) / float64(len(durations))
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("fraction of delist delays below median: %g, want ~0.5", frac)
	}
}

func TestQueryName(t *testing.T) {
	b := newTestList()
	if got := b.QueryName("1.2.3.4"); got != "4.3.2.1.zen.dnsbl.example" {
		t.Errorf("QueryName = %q", got)
	}
	if got := b.QueryName("weird"); got != "weird.zen.dnsbl.example" {
		t.Errorf("QueryName fallback = %q", got)
	}
}

func TestListedCount(t *testing.T) {
	b := newTestList()
	ips := []string{"7.0.0.1", "7.0.0.2", "7.0.0.3"}
	for i := 0; i < 3; i++ {
		b.ReportSpam(ips[0], t0.Add(time.Duration(i)*time.Minute))
		b.ReportSpam(ips[1], t0.Add(time.Duration(i)*time.Minute))
	}
	if got := b.ListedCount(ips, t0.Add(5*time.Minute)); got != 2 {
		t.Errorf("ListedCount = %d want 2", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	b := New(Config{}, simrng.New(2))
	ip := "8.0.0.1"
	for i := 0; i < 3; i++ {
		b.ReportSpam(ip, t0.Add(time.Duration(i)*time.Minute))
	}
	if !b.Listed(ip, t0.Add(5*time.Minute)) {
		t.Error("default threshold should be 3")
	}
	if DefaultConfig().Zone == "" {
		t.Error("DefaultConfig missing zone")
	}
}

func TestNeverReportedNotListed(t *testing.T) {
	b := newTestList()
	if b.Listed("9.9.9.9", t0) {
		t.Error("unknown IP listed")
	}
}
