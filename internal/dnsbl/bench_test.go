package dnsbl

import (
	"testing"
	"time"

	"repro/internal/simrng"
)

func BenchmarkListed(b *testing.B) {
	bl := New(DefaultConfig(), simrng.New(1))
	at := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		bl.ReportSpam("5.0.0.1", at.Add(time.Duration(i)*time.Minute))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.Listed("5.0.0.1", at.Add(time.Hour))
	}
}

func BenchmarkReportSpam(b *testing.B) {
	bl := New(DefaultConfig(), simrng.New(2))
	at := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.ReportSpam("6.0.0.1", at.Add(time.Duration(i)*time.Minute))
	}
}
