// Package spamfilter implements content-based spam scoring for both
// sides of a delivery: the sender ESP's filter (which stamps the
// email_flag field of the dataset) and heterogeneous receiver-side
// filters. The paper's key finding is that rule differences between
// filters cause large verdict disagreement (46.49% of Coremail-spam is
// ham to receivers; 39.46% of receiver-spam is ham to Coremail), which
// in turn wastes retries and damages MTA reputation. Filters here score
// token features generated from a latent spamminess, with per-ESP weight
// and threshold perturbation producing mechanistic disagreement.
package spamfilter

import (
	"fmt"

	"repro/internal/simrng"
)

// Token vocabularies. Messages never carry real content (the paper's
// dataset has none); these tokens stand in for the features a content
// filter would extract.
var (
	spamTokens = []string{
		"prize", "winner", "free-money", "crypto-double", "viagra",
		"lottery", "act-now", "wire-transfer", "unclaimed-funds",
		"miracle-cure", "hot-singles", "casino-bonus", "cheap-meds",
		"urgent-inheritance", "work-from-home", "guaranteed-roi",
		"click-here", "limited-offer", "risk-free", "no-obligation",
	}
	hamTokens = []string{
		"meeting", "quarterly-report", "invoice", "syllabus", "thesis",
		"agenda", "deployment", "review-comments", "itinerary",
		"purchase-order", "lab-results", "conference-cfp", "timesheet",
		"contract-draft", "shipping-manifest", "release-notes",
		"course-enrollment", "budget-forecast", "password-reset", "receipt",
	}
	sharedTokens = []string{
		"offer", "account", "payment", "confirm", "update", "discount",
		"newsletter", "subscription", "promotion", "invitation",
	}
)

// GenerateTokens draws n content tokens for a message with the given
// latent spamminess in [0,1]. Higher spamminess shifts the mixture
// toward the spam vocabulary; the shared vocabulary keeps the problem
// ambiguous near the middle.
func GenerateTokens(rng *simrng.RNG, spamminess float64, n int) []string {
	if n <= 0 {
		n = 12
	}
	out := make([]string, n)
	for i := range out {
		u := rng.Float64()
		switch {
		case u < 0.25:
			out[i] = simrng.Pick(rng, sharedTokens)
		case rng.Float64() < spamminess:
			out[i] = simrng.Pick(rng, spamTokens)
		default:
			out[i] = simrng.Pick(rng, hamTokens)
		}
	}
	return out
}

// Filter is one ESP's content filter: per-token weights plus a decision
// threshold. Positive score means spammy.
type Filter struct {
	Name      string
	weights   map[string]float64
	threshold float64
}

// NewCanonical returns the reference filter (used for the sender ESP):
// spam tokens weigh +1, ham tokens −1, shared tokens 0, threshold 0.15.
func NewCanonical(name string) *Filter {
	f := &Filter{Name: name, weights: make(map[string]float64), threshold: 0.15}
	for _, t := range spamTokens {
		f.weights[t] = 1
	}
	for _, t := range hamTokens {
		f.weights[t] = -1
	}
	for _, t := range sharedTokens {
		f.weights[t] = 0
	}
	return f
}

// NewPerturbed returns a filter whose weights are jittered by ±jitter
// and whose threshold is shifted by thresholdShift relative to the
// canonical filter. Receiver ESPs get perturbed filters, producing the
// cross-ESP disagreement the paper measures.
func NewPerturbed(name string, rng *simrng.RNG, jitter, thresholdShift float64) *Filter {
	f := NewCanonical(name)
	// Perturb in deterministic vocabulary order: map iteration order
	// would break run-to-run reproducibility.
	for _, vocab := range [][]string{spamTokens, hamTokens, sharedTokens} {
		for _, tok := range vocab {
			f.weights[tok] += (rng.Float64()*2 - 1) * jitter
		}
	}
	f.threshold += thresholdShift
	return f
}

// Score returns the mean token weight of the message's tokens. Unknown
// tokens score zero.
func (f *Filter) Score(tokens []string) float64 {
	if len(tokens) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range tokens {
		sum += f.weights[t]
	}
	return sum / float64(len(tokens))
}

// Classify reports whether the filter considers the token set spam.
func (f *Filter) Classify(tokens []string) bool {
	return f.Score(tokens) > f.threshold
}

// Threshold returns the filter's decision threshold.
func (f *Filter) Threshold() float64 { return f.threshold }

// String identifies the filter.
func (f *Filter) String() string {
	return fmt.Sprintf("spamfilter(%s, thr=%.2f)", f.Name, f.threshold)
}
