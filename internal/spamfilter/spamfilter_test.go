package spamfilter

import (
	"strings"
	"testing"

	"repro/internal/simrng"
)

func TestCanonicalSeparatesClearCases(t *testing.T) {
	f := NewCanonical("coremail")
	rng := simrng.New(1)
	spamOK, hamOK := 0, 0
	const n = 2000
	for i := 0; i < n; i++ {
		if f.Classify(GenerateTokens(rng, 0.95, 12)) {
			spamOK++
		}
		if !f.Classify(GenerateTokens(rng, 0.05, 12)) {
			hamOK++
		}
	}
	if float64(spamOK)/n < 0.95 {
		t.Errorf("canonical filter catches only %d/%d obvious spam", spamOK, n)
	}
	if float64(hamOK)/n < 0.95 {
		t.Errorf("canonical filter passes only %d/%d obvious ham", hamOK, n)
	}
}

func TestScoreMonotonicInSpamminess(t *testing.T) {
	f := NewCanonical("c")
	rng := simrng.New(2)
	avg := func(s float64) float64 {
		sum := 0.0
		for i := 0; i < 500; i++ {
			sum += f.Score(GenerateTokens(rng, s, 12))
		}
		return sum / 500
	}
	lo, mid, hi := avg(0.1), avg(0.5), avg(0.9)
	if !(lo < mid && mid < hi) {
		t.Errorf("score not monotone: %g %g %g", lo, mid, hi)
	}
}

func TestPerturbedFiltersDisagree(t *testing.T) {
	rng := simrng.New(3)
	coremail := NewCanonical("coremail")
	receiver := NewPerturbed("strict-esp", rng.Stream("f1"), 0.5, -0.10)
	gen := rng.Stream("gen")
	disagree := 0
	const n = 5000
	for i := 0; i < n; i++ {
		// Ambiguous mid-range traffic is where filters disagree.
		toks := GenerateTokens(gen, 0.25+0.5*gen.Float64(), 12)
		if coremail.Classify(toks) != receiver.Classify(toks) {
			disagree++
		}
	}
	rate := float64(disagree) / n
	if rate < 0.05 || rate > 0.8 {
		t.Errorf("disagreement rate %g, want sizable but not total", rate)
	}
}

func TestEmptyAndUnknownTokens(t *testing.T) {
	f := NewCanonical("c")
	if f.Score(nil) != 0 {
		t.Error("empty token set should score 0")
	}
	if f.Classify([]string{"zzz-unknown", "qqq-unknown"}) {
		t.Error("unknown tokens should not classify as spam")
	}
}

func TestGenerateTokensCount(t *testing.T) {
	rng := simrng.New(4)
	if got := len(GenerateTokens(rng, 0.5, 7)); got != 7 {
		t.Errorf("token count %d want 7", got)
	}
	if got := len(GenerateTokens(rng, 0.5, 0)); got != 12 {
		t.Errorf("default token count %d want 12", got)
	}
}

func TestGenerateTokensVocabulary(t *testing.T) {
	rng := simrng.New(5)
	known := map[string]bool{}
	for _, v := range [][]string{spamTokens, hamTokens, sharedTokens} {
		for _, tok := range v {
			known[tok] = true
		}
	}
	for _, tok := range GenerateTokens(rng, 0.5, 200) {
		if !known[tok] {
			t.Fatalf("generated unknown token %q", tok)
		}
	}
}

func TestPerturbedDeterministicPerStream(t *testing.T) {
	a := NewPerturbed("x", simrng.New(7).Stream("f"), 0.3, 0)
	b := NewPerturbed("x", simrng.New(7).Stream("f"), 0.3, 0)
	toks := []string{"prize", "meeting", "offer", "invoice"}
	if a.Score(toks) != b.Score(toks) {
		t.Error("same stream should produce identical filters")
	}
}

func TestStringContainsName(t *testing.T) {
	f := NewCanonical("gmail-like")
	if s := f.String(); !strings.Contains(s, "gmail-like") {
		t.Errorf("String() = %q", s)
	}
	if f.Threshold() != 0.15 {
		t.Errorf("canonical threshold %g", f.Threshold())
	}
}
