package typo

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(cands []Candidate) map[string]Kind {
	m := make(map[string]Kind, len(cands))
	for _, c := range cands {
		if _, ok := m[c.Name]; !ok {
			m[c.Name] = c.Kind
		}
	}
	return m
}

func TestPaperExamples(t *testing.T) {
	// The typo examples quoted in Section 4.3.2.
	cases := []struct {
		original, observed string
		kind               Kind
	}{
		{"yahoo.com.cn", "yaho.com.cn", Omission},
		{"hotmail.com", "lotmail.com", Bitsquatting}, // 'h'^0x04 = 'l'
		{"springer.com", "springer.comm", TLDRepetition},
	}
	for _, c := range cases {
		got, ok := Classify(c.observed, c.original)
		if !ok {
			t.Errorf("Classify(%q, %q): not recognized", c.observed, c.original)
			continue
		}
		if got != c.kind {
			t.Errorf("Classify(%q, %q) = %v want %v", c.observed, c.original, got, c.kind)
		}
	}
	// icloud→icloyd is a keyboard replacement (u→y adjacency).
	if k, ok := Classify("icloyd.com", "icloud.com"); !ok || k != Replacement {
		t.Errorf("icloyd.com: %v %v", k, ok)
	}
}

func TestLabelKinds(t *testing.T) {
	m := kinds(Label("alice"))
	wantMembers := map[string]Kind{
		"alce":   Omission,      // drop i
		"aalice": Repetition,    // double a
		"laice":  Transposition, // swap al
		"a-lice": Hyphenation,
		"alicce": Repetition,
		"olice":  VowelSwap, // a→o... also bitsquat? 'a'^0x0e no; keep as member check
	}
	for name := range wantMembers {
		if _, ok := m[name]; !ok {
			t.Errorf("Label(alice) missing candidate %q", name)
		}
	}
}

func TestLabelExcludesOriginalAndDuplicates(t *testing.T) {
	f := func(raw string) bool {
		label := sanitize(raw)
		if label == "" {
			return true
		}
		seen := map[string]bool{}
		for _, c := range Label(label) {
			if c.Name == label {
				return false
			}
			if seen[c.Name] {
				return false
			}
			seen[c.Name] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitize(raw string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(raw) {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteByte(byte(r))
		}
		if b.Len() >= 12 {
			break
		}
	}
	return b.String()
}

func TestDomainKeepsSuffix(t *testing.T) {
	for _, c := range Domain("paypal.com") {
		if c.Kind == TLDRepetition {
			if c.Name != "paypal.comm" {
				t.Errorf("TLD repetition = %q", c.Name)
			}
			continue
		}
		if !strings.HasSuffix(c.Name, ".com") {
			t.Errorf("candidate %q lost the .com suffix", c.Name)
		}
	}
}

func TestDomainMultiLabel(t *testing.T) {
	m := kinds(Domain("yahoo.com.cn"))
	if k, ok := m["yaho.com.cn"]; !ok || k != Omission {
		t.Errorf("yaho.com.cn: %v %v", k, ok)
	}
	if k, ok := m["yahoo.com.cnn"]; !ok || k != TLDRepetition {
		t.Errorf("yahoo.com.cnn: %v %v", k, ok)
	}
}

func TestClassifyNonTypo(t *testing.T) {
	if _, ok := Classify("completely-different.com", "paypal.com"); ok {
		t.Error("unrelated name classified as typo")
	}
	if _, ok := Classify("paypal.com", "paypal.com"); ok {
		t.Error("identical name must not classify as typo")
	}
}

func TestUsernameGeneration(t *testing.T) {
	m := kinds(Username("john.smith"))
	if len(m) < 30 {
		t.Errorf("too few username candidates: %d", len(m))
	}
	if k, ok := m["john.smth"]; !ok || k != Omission {
		t.Errorf("john.smth: %v %v", k, ok)
	}
}

func TestSimilarity(t *testing.T) {
	cases := []struct {
		a, b string
		lo   float64
		hi   float64
	}{
		{"alice", "alice", 1, 1},
		{"alice", "alce", 0.79, 0.81}, // 1 edit over 5
		{"alice", "bob", 0, 0.3},
		{"", "", 1, 1},
		{"a", "", 0, 0},
	}
	for _, c := range cases {
		got := Similarity(c.a, c.b)
		if got < c.lo || got > c.hi {
			t.Errorf("Similarity(%q,%q)=%g want [%g,%g]", c.a, c.b, got, c.lo, c.hi)
		}
	}
}

func TestSimilaritySymmetric(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 30 || len(b) > 30 {
			return true
		}
		return Similarity(a, b) == Similarity(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeneratedCandidatesAreHighSimilarity(t *testing.T) {
	// Every generated typo of a reasonably long name stays above the
	// paper's 90% pairing threshold.
	for _, c := range Label("engineering") {
		if s := Similarity(c.Name, "engineering"); s < 0.9 {
			t.Errorf("candidate %q similarity %g < 0.9", c.Name, s)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"kitten", "sitting", 3},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.want {
			t.Errorf("levenshtein(%q,%q)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	all := []Kind{Omission, Repetition, Transposition, Replacement,
		Insertion, Bitsquatting, VowelSwap, Hyphenation, TLDRepetition}
	seen := map[string]bool{}
	for _, k := range all {
		s := k.String()
		if s == "none" || seen[s] {
			t.Errorf("Kind %d has bad/duplicate name %q", k, s)
		}
		seen[s] = true
	}
	if KindNone.String() != "none" {
		t.Error("KindNone name")
	}
}

func TestClassifyLocalDottedUsernames(t *testing.T) {
	// Classify would treat "alice.smith" as a domain; ClassifyLocal must
	// handle the dot as part of the label.
	if k, ok := ClassifyLocal("alice.smth", "alice.smith"); !ok || k != Omission {
		t.Errorf("ClassifyLocal dotted = %v %v", k, ok)
	}
	if _, ok := ClassifyLocal("totally.other", "alice.smith"); ok {
		t.Error("unrelated local classified as typo")
	}
}
