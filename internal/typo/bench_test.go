package typo

import "testing"

func BenchmarkDomainCandidates(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Domain("hotmail.com")
	}
}

func BenchmarkClassify(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := Classify("lotmail.com", "hotmail.com"); !ok {
			b.Fatal("no match")
		}
	}
}

func BenchmarkSimilarity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Similarity("alice.smith", "alice.smth")
	}
}
