package typo_test

import (
	"fmt"

	"repro/internal/typo"
)

func ExampleClassify() {
	// The paper's own example: a bit flip turns hotmail into lotmail.
	kind, ok := typo.Classify("lotmail.com", "hotmail.com")
	fmt.Println(kind, ok)
	// Output: bitsquatting true
}

func ExampleSimilarity() {
	fmt.Printf("%.2f\n", typo.Similarity("alice.smith", "alice.smth"))
	fmt.Printf("%.2f\n", typo.Similarity("alice.smith", "bob.jones"))
	// Output:
	// 0.91
	// 0.09
}
