package squat

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/dataset"
	"repro/internal/dns"
	"repro/internal/ndr"
	"repro/internal/registrar"
)

func day(d int) time.Time { return clock.StudyStart.AddDate(0, 0, d).Add(10 * time.Hour) }

func rec(from, to string, at time.Time, results ...string) dataset.Record {
	r := dataset.Record{From: from, To: to, StartTime: at, EndTime: at.Add(time.Minute), EmailFlag: "Normal"}
	for range results {
		r.FromIP = append(r.FromIP, "5.0.0.1")
		r.ToIP = append(r.ToIP, "20.0.0.1")
		r.DeliveryLatency = append(r.DeliveryLatency, 5000)
	}
	r.DeliveryResult = results
	return r
}

func renderT(t ndr.Type, addr, domain string) string {
	idx := ndr.NonAmbiguousTemplatesFor(t)[0]
	return ndr.Catalog[idx].Render(ndr.Params{
		Addr: addr, Local: addr, Domain: domain, IP: "5.0.0.1",
		MX: "mx1." + domain, BL: "Spamhaus", Vendor: "v", Sec: "60", Size: "1",
	})
}

// scenario builds a corpus + environment with:
//   - dead-typo.com: never resolves, available at scan (vulnerable typo of dead-type.com? matched against rank top)
//   - expired.com: received mail until day 100, NXDOMAIN after, available
//   - taken.com: never resolves but re-registered before scan (not vulnerable)
//   - freemail.example ghosts: one frozen (non-registrable), one unknown
func scenario(t *testing.T) (*analysis.Analysis, Config) {
	t.Helper()
	auth := dns.NewAuthority()
	reg := registrar.NewRegistry()
	ureg := registrar.NewUsernameRegistry("freemail.example", false)

	var records []dataset.Record
	// Popular live domain so ranks exist; also the typo base.
	auth.Add(dns.Record{Name: "popular.com", Type: dns.TypeMX, MX: dns.MX{Host: "mx1.popular.com", Pref: 10}})
	auth.Add(dns.Record{Name: "mx1.popular.com", Type: dns.TypeA, A: "20.0.0.1"})
	reg.Register("popular.com", "org", day(0).AddDate(-5, 0, 0), time.Time{}, true)
	for i := 0; i < 200; i++ {
		records = append(records, rec("s@a.com", fmt.Sprintf("u%d@popular.com", i%20), day(i%400), "250 OK"))
	}

	// Typo domain of popular.com: "popula.com" (omission), never resolves.
	for i := 0; i < 30; i++ {
		records = append(records, rec(fmt.Sprintf("s%d@a.com", i%3), "bob@popula.com", day(i*10),
			renderT(ndr.T2ReceiverDNS, "bob@popula.com", "popula.com")))
	}

	// Expired mid-study: received until day 100, dead after.
	exp := day(100)
	reg.Register("expired.com", "origcorp", day(0).AddDate(-3, 0, 0), exp, true)
	for i := 0; i < 10; i++ {
		records = append(records, rec("s@a.com", "u@expired.com", day(i*9), "250 OK"))
	}
	for i := 0; i < 10; i++ {
		records = append(records, rec("s@a.com", "u@expired.com", day(110+i*10),
			renderT(ndr.T2ReceiverDNS, "u@expired.com", "expired.com")))
	}

	// Never-resolving but re-registered (with MX) before scan by a new
	// registrant: NOT available, so not vulnerable; audited as changed.
	reg.Register("taken.com", "oldowner", day(0).AddDate(-4, 0, 0), day(50), true)
	reg.Register("taken.com", "squatter", time.Date(2023, 10, 1, 0, 0, 0, 0, time.UTC), time.Time{}, true)
	for i := 0; i < 8; i++ {
		records = append(records, rec("s@a.com", "x@taken.com", day(60+i),
			renderT(ndr.T2ReceiverDNS, "x@taken.com", "taken.com")))
	}

	// Freemail ghosts: heavy T8 traffic.
	auth.Add(dns.Record{Name: "freemail.example", Type: dns.TypeMX, MX: dns.MX{Host: "mx1.freemail.example", Pref: 10}})
	auth.Add(dns.Record{Name: "mx1.freemail.example", Type: dns.TypeA, A: "20.0.0.9"})
	ureg.SetState("frozenuser", registrar.UserFrozen)
	// "openuser" stays unknown -> registrable.
	// "wasactive" worked early, then account deleted (recycled provider? no) — state frozen.
	for i := 0; i < 6; i++ {
		records = append(records, rec("s@a.com", "frozenuser@freemail.example", day(200+i),
			renderT(ndr.T8NoSuchUser, "frozenuser@freemail.example", "freemail.example")))
		records = append(records, rec("s2@a.com", "openuser@freemail.example", day(200+i),
			renderT(ndr.T8NoSuchUser, "openuser@freemail.example", "freemail.example")))
	}

	env := &analysis.Environment{
		Resolver: dns.NewResolver(auth, nil),
		Registry: reg,
		UserRegs: map[string]*registrar.UsernameRegistry{"freemail.example": ureg},
	}
	a := analysis.New(records, env)
	cfg := DefaultConfig()
	cfg.MinUsernameEmails = 2
	return a, cfg
}

func TestDomainFunnel(t *testing.T) {
	a, cfg := scenario(t)
	res := Scan(a, nil, cfg)

	wantVuln := map[string]bool{"popula.com": true, "expired.com": true}
	got := map[string]bool{}
	for _, f := range res.VulnerableDomains {
		got[f.Domain] = true
	}
	for d := range wantVuln {
		if !got[d] {
			t.Errorf("vulnerable domain %s missing (got %v)", d, got)
		}
	}
	if got["taken.com"] {
		t.Error("re-registered taken.com should not be vulnerable")
	}
	if got["popular.com"] {
		t.Error("live domain flagged vulnerable")
	}
}

func TestTypoAndResidualTrustClasses(t *testing.T) {
	a, cfg := scenario(t)
	res := Scan(a, nil, cfg)
	var typoF, expiredF *DomainFinding
	for i := range res.VulnerableDomains {
		switch res.VulnerableDomains[i].Domain {
		case "popula.com":
			typoF = &res.VulnerableDomains[i]
		case "expired.com":
			expiredF = &res.VulnerableDomains[i]
		}
	}
	if typoF == nil || !typoF.IsTypo {
		t.Errorf("popula.com should be a typo finding: %+v", typoF)
	}
	if typoF != nil && typoF.Senders != 3 {
		t.Errorf("popula.com senders = %d want 3", typoF.Senders)
	}
	if expiredF == nil || !expiredF.ReceivedHistorically {
		t.Errorf("expired.com should be residual-trust: %+v", expiredF)
	}
	if res.TypoDomains < 1 || res.HistoricallyRecv < 1 {
		t.Errorf("class counters: typo=%d recv=%d", res.TypoDomains, res.HistoricallyRecv)
	}
}

func TestReRegistrationAudit(t *testing.T) {
	a, cfg := scenario(t)
	// taken.com is not vulnerable so it is not audited; make the audit
	// meaningful by re-registering expired.com after scan.
	a.Env.Registry.Register("expired.com", "newowner", time.Date(2024, 1, 5, 0, 0, 0, 0, time.UTC), time.Time{}, true)
	res := Scan(a, nil, cfg)
	if res.ReRegistered != 1 || res.RegistrantChanged != 1 || res.RegistrantSame != 0 {
		t.Errorf("audit: rereg=%d changed=%d same=%d", res.ReRegistered, res.RegistrantChanged, res.RegistrantSame)
	}
	if res.ReRegisteredMX != 1 {
		t.Errorf("rereg with MX = %d", res.ReRegisteredMX)
	}
}

func TestUsernameFunnel(t *testing.T) {
	a, cfg := scenario(t)
	res := Scan(a, nil, cfg)
	if res.ProbedUsernames != 2 {
		t.Fatalf("probed = %d want 2", res.ProbedUsernames)
	}
	if res.RegistrableCount != 1 {
		t.Fatalf("registrable = %d want 1 (openuser only)", res.RegistrableCount)
	}
	if res.VulnerableUsernames[0].Address != "openuser@freemail.example" {
		t.Errorf("vulnerable username: %+v", res.VulnerableUsernames[0])
	}
	if res.UsernameSenders != 1 || res.UsernameEmails != 6 {
		t.Errorf("exposure: senders=%d emails=%d", res.UsernameSenders, res.UsernameEmails)
	}
}

func TestWeeklyTimeline(t *testing.T) {
	a, cfg := scenario(t)
	res := Scan(a, nil, cfg)
	totalEmails := 0
	for _, n := range res.WeeklyEmails {
		totalEmails += n
	}
	// 30 typo + 10 dead-expired failures + 10 pre-expiry successes to
	// expired.com + 6 openuser emails = 56.
	if totalEmails != 56 {
		t.Errorf("weekly email total = %d want 56", totalEmails)
	}
	peak := 0
	for _, n := range res.WeeklySenders {
		if n > peak {
			peak = n
		}
	}
	if peak == 0 {
		t.Error("no weekly sender exposure recorded")
	}
}

func TestScanWithoutEnvironment(t *testing.T) {
	records := []dataset.Record{rec("a@a.com", "b@b.com", day(0), "250 OK")}
	a := analysis.New(records, nil)
	res := Scan(a, nil, DefaultConfig())
	if res.VulnerableCount != 0 || res.ProbedUsernames != 0 {
		t.Errorf("env-less scan should be empty: %+v", res)
	}
}
