// Package squat implements the paper's Section-5 email-address
// squatting evaluation: the domain funnel (never-resolved → NXDOMAIN →
// purchasable), the username funnel (heavily-mailed non-existent
// addresses probed against provider registration UIs), historical
// exposure quantification, the Figure-9 weekly timeline, and the
// re-registration WHOIS audit.
package squat

import (
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/clock"
	"repro/internal/dns"
	"repro/internal/ndr"
)

// Config parameterizes the scan.
type Config struct {
	// ScanDate is when domain availability is checked (paper: the
	// GoDaddy API query on 2023-12-03).
	ScanDate time.Time
	// AuditDate is the WHOIS re-check (paper: 2024-02-03).
	AuditDate time.Time
	// MinUsernameEmails is the incoming-email threshold for probing a
	// non-existent username (paper: 100 at full scale).
	MinUsernameEmails int
	// MaxUsernameProbes bounds the registration-UI probes (paper: 875).
	MaxUsernameProbes int
}

// DefaultConfig matches the paper's dates with thresholds scaled for
// the simulation corpus.
func DefaultConfig() Config {
	return Config{
		ScanDate:          time.Date(2023, 12, 3, 0, 0, 0, 0, time.UTC),
		AuditDate:         time.Date(2024, 2, 3, 0, 0, 0, 0, time.UTC),
		MinUsernameEmails: 2,
		MaxUsernameProbes: 875,
	}
}

// DomainFinding is one vulnerable (registrable) domain.
type DomainFinding struct {
	Domain  string
	IsTypo  bool
	Senders int
	Emails  int
	// ReceivedHistorically reports the domain accepted mail inside the
	// study window before dying (residual-trust class).
	ReceivedHistorically bool
}

// UsernameFinding is one probed username.
type UsernameFinding struct {
	Address     string
	Provider    string
	Emails      int
	Registrable bool
	// PastWorking reports the address accepted mail earlier in the
	// dataset (paper: 25 of 312, mostly at Yahoo).
	PastWorking bool
}

// Result is the complete squatting evaluation.
type Result struct {
	// Domain funnel counters.
	NeverResolved   int // domains with only DNS failures in the dataset
	NXDomainAtScan  int // still NXDOMAIN when actively queried
	VulnerableCount int // available for registration at ScanDate

	VulnerableDomains []DomainFinding
	DomainSenders     int // distinct senders mailing vulnerable domains
	DomainEmails      int
	TypoDomains       int
	HistoricallyRecv  int

	// Re-registration audit (paper: 751 of 3K re-registered; 105 with
	// MX; 56.19% registrant unchanged, 26.67% changed).
	ReRegistered      int
	ReRegisteredMX    int
	RegistrantSame    int
	RegistrantChanged int

	// Username funnel.
	ProbedUsernames     int
	VulnerableUsernames []UsernameFinding
	RegistrableCount    int
	PastWorking         int
	UsernameSenders     int
	UsernameEmails      int

	// Figure 9: weekly exposure.
	WeeklySenders [clock.StudyWeeks]int
	WeeklyEmails  [clock.StudyWeeks]int
}

// Scan runs the evaluation over a classified corpus. It needs
// Env.Resolver (active DNS queries), Env.Registry (availability +
// WHOIS) and Env.UserRegs (registration-UI probing); missing services
// skip the corresponding funnel.
func Scan(a *analysis.Analysis, det *analysis.Detections, cfg Config) *Result {
	if det == nil {
		det = a.Detect()
	}
	res := &Result{}
	vulnerable := scanDomains(a, det, cfg, res)
	vulnUsers := scanUsernames(a, cfg, res)
	timeline(a, vulnerable, vulnUsers, res)
	return res
}

func scanDomains(a *analysis.Analysis, det *analysis.Detections, cfg Config, res *Result) map[string]bool {
	env := a.Env
	vulnerable := map[string]bool{}
	if env == nil || env.Registry == nil || env.Resolver == nil {
		return vulnerable
	}
	res.NeverResolved = len(det.NeverResolved)
	for _, domain := range det.NeverResolved {
		// Active A/MX query at scan time (the paper's "actively query
		// the A records ... retain domains returning NXDOMAIN").
		if _, code := env.Resolver.ResolveMX(domain, cfg.ScanDate); code != dns.NXDomain {
			continue
		}
		res.NXDomainAtScan++
		if !env.Registry.Available(domain, cfg.ScanDate) {
			continue
		}
		vulnerable[domain] = true
	}
	res.VulnerableCount = len(vulnerable)

	// Exposure: who mailed these domains, how often, and did the domain
	// ever accept mail inside the window.
	senders := map[string]map[string]bool{}
	emails := map[string]int{}
	received := map[string]bool{}
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		to := rec.ToDomain()
		if !vulnerable[to] {
			continue
		}
		if senders[to] == nil {
			senders[to] = map[string]bool{}
		}
		senders[to][rec.From] = true
		emails[to]++
		if rec.Succeeded() {
			received[to] = true
		}
	}
	// Note: never-resolved domains can't have succeeded; the
	// residual-trust class comes from mid-study deaths, detected below
	// by scanning ALL domains that died (succeeded earlier, NXDOMAIN at
	// scan, available).
	for domain, st := range domainLifecycle(a) {
		if vulnerable[domain] || st != lifecycleDied {
			continue
		}
		if _, code := env.Resolver.ResolveMX(domain, cfg.ScanDate); code != dns.NXDomain {
			continue
		}
		if !env.Registry.Available(domain, cfg.ScanDate) {
			continue
		}
		vulnerable[domain] = true
		received[domain] = true
		res.NXDomainAtScan++
	}
	res.VulnerableCount = len(vulnerable)

	// Second exposure pass now that died-mid-study domains are included.
	senders = map[string]map[string]bool{}
	emails = map[string]int{}
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		to := rec.ToDomain()
		if !vulnerable[to] {
			continue
		}
		if senders[to] == nil {
			senders[to] = map[string]bool{}
		}
		senders[to][rec.From] = true
		emails[to]++
	}

	allSenders := map[string]bool{}
	for domain := range vulnerable {
		_, isTypo := det.DomainTypos[domain]
		f := DomainFinding{
			Domain:               domain,
			IsTypo:               isTypo,
			Senders:              len(senders[domain]),
			Emails:               emails[domain],
			ReceivedHistorically: received[domain],
		}
		res.VulnerableDomains = append(res.VulnerableDomains, f)
		res.DomainEmails += f.Emails
		if isTypo {
			res.TypoDomains++
		}
		if f.ReceivedHistorically {
			res.HistoricallyRecv++
		}
		for s := range senders[domain] {
			allSenders[s] = true
		}
		// Re-registration audit.
		if reg, ok := env.Registry.CurrentRegistration(domain, cfg.AuditDate); ok {
			res.ReRegistered++
			if reg.HasMX {
				res.ReRegisteredMX++
			}
			hist := env.Registry.WHOISHistory(domain)
			if len(hist) >= 2 {
				if hist[0].Registrant == reg.Registrant {
					res.RegistrantSame++
				} else {
					res.RegistrantChanged++
				}
			}
		}
	}
	res.DomainSenders = len(allSenders)
	sort.Slice(res.VulnerableDomains, func(i, j int) bool {
		return res.VulnerableDomains[i].Emails > res.VulnerableDomains[j].Emails
	})
	return vulnerable
}

type lifecycle int

const (
	lifecycleAlive lifecycle = iota
	lifecycleDied            // succeeded earlier, only DNS failures later
)

// domainLifecycle classifies receiver domains that accepted mail and
// later only failed DNS — the expired-mid-study class.
func domainLifecycle(a *analysis.Analysis) map[string]lifecycle {
	type state struct {
		lastOK   time.Time
		lastFail time.Time
		okSeen   bool
		failSeen bool
	}
	st := map[string]*state{}
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		s := st[rec.ToDomain()]
		if s == nil {
			s = &state{}
			st[rec.ToDomain()] = s
		}
		if rec.Succeeded() {
			s.okSeen = true
			if rec.EndTime.After(s.lastOK) {
				s.lastOK = rec.EndTime
			}
		} else if onlyT2(a, i) {
			s.failSeen = true
			if rec.StartTime.After(s.lastFail) {
				s.lastFail = rec.StartTime
			}
		}
	}
	out := map[string]lifecycle{}
	for domain, s := range st {
		if s.okSeen && s.failSeen && s.lastFail.After(s.lastOK) {
			out[domain] = lifecycleDied
		} else {
			out[domain] = lifecycleAlive
		}
	}
	return out
}

func onlyT2(a *analysis.Analysis, i int) bool {
	c := a.Classified[i]
	return len(c.Types) == 1 && c.Types[0] == ndr.T2ReceiverDNS
}

func scanUsernames(a *analysis.Analysis, cfg Config, res *Result) map[string]bool {
	env := a.Env
	vuln := map[string]bool{}
	if env == nil || len(env.UserRegs) == 0 {
		return vuln
	}
	// Candidate addresses: T8-bounced at providers with a registration
	// UI, ranked by incoming-email count.
	counts := map[string]int{}
	everOK := map[string]bool{}
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		provider := rec.ToDomain()
		if env.UserRegs[provider] == nil {
			continue
		}
		if rec.Succeeded() {
			everOK[rec.To] = true
			continue
		}
		if a.Classified[i].HasType(ndr.T8NoSuchUser) {
			counts[rec.To]++
		}
	}
	type cand struct {
		addr string
		n    int
	}
	var cands []cand
	for addr, n := range counts {
		if n >= cfg.MinUsernameEmails {
			cands = append(cands, cand{addr, n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].n != cands[j].n {
			return cands[i].n > cands[j].n
		}
		return cands[i].addr < cands[j].addr
	})
	if len(cands) > cfg.MaxUsernameProbes {
		cands = cands[:cfg.MaxUsernameProbes]
	}
	res.ProbedUsernames = len(cands)

	senders := map[string]bool{}
	for _, c := range cands {
		at := strings.LastIndexByte(c.addr, '@')
		local, provider := c.addr[:at], c.addr[at+1:]
		reg := env.UserRegs[provider]
		registrable := reg.Registrable(local)
		f := UsernameFinding{
			Address:     c.addr,
			Provider:    provider,
			Emails:      c.n,
			Registrable: registrable,
			PastWorking: everOK[c.addr],
		}
		if registrable {
			res.RegistrableCount++
			vuln[c.addr] = true
			res.UsernameEmails += c.n
			if f.PastWorking {
				res.PastWorking++
			}
			res.VulnerableUsernames = append(res.VulnerableUsernames, f)
		}
	}
	// Distinct senders that mailed vulnerable usernames.
	for i := 0; i < a.Records.Len(); i++ {
		if vuln[a.Records.At(i).To] {
			senders[a.Records.At(i).From] = true
		}
	}
	res.UsernameSenders = len(senders)
	return vuln
}

// timeline fills the Figure-9 weekly exposure series.
func timeline(a *analysis.Analysis, vulnDomains, vulnUsers map[string]bool, res *Result) {
	weekSenders := make([]map[string]bool, clock.StudyWeeks)
	for i := 0; i < a.Records.Len(); i++ {
		rec := a.Records.At(i)
		if !vulnDomains[rec.ToDomain()] && !vulnUsers[rec.To] {
			continue
		}
		wk := clock.Week(rec.StartTime)
		res.WeeklyEmails[wk]++
		if weekSenders[wk] == nil {
			weekSenders[wk] = map[string]bool{}
		}
		weekSenders[wk][rec.From] = true
	}
	for wk, m := range weekSenders {
		res.WeeklySenders[wk] = len(m)
	}
}
