package geo

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/simrng"
)

// AS is an autonomous system hosting receiver MTAs. The registry is
// seeded with the paper's Table 4 (hosted-security vendors like
// Proofpoint and Cisco Ironport carry a large share of corporate MX).
type AS struct {
	Number int
	Org    string
	// HostWeight is the relative share of receiver-domain MX hosting the
	// AS carries among hosted/security providers.
	HostWeight float64
}

// HostedASes are the mail-hosting and security ASes from Table 4 that
// serve domains in many countries. Freemail ASes (Microsoft, Google,
// Apple, Amazon) are bound to their well-known domains by the world
// model; the security vendors are sampled for corporate domains that
// outsource MX.
var HostedASes = []AS{
	{8075, "Microsoft Corporation", 0},
	{15169, "Google LLC", 0},
	{16509, "Amazon.com, Inc.", 0},
	{52129, "Proofpoint, Inc.", 3.0},
	{22843, "Proofpoint, Inc.", 2.3},
	{26211, "Proofpoint, Inc.", 1.9},
	{3462, "Data Communication Business Group", 1.8},
	{714, "Apple Inc.", 0},
	{16417, "Cisco Systems Ironport Division", 1.1},
	{30238, "Cisco Systems Ironport Division", 1.05},
}

// DB is the geolocation and AS database for one simulated world. It
// allocates synthetic public IPv4 addresses deterministically and maps
// them back to (country, AS), standing in for the ip-api service.
type DB struct {
	mu sync.Mutex

	countries []Country
	byCode    map[string]int
	sampler   *simrng.Weighted

	blocks    map[string]*ipBlock // key: "CC/ASN"
	prefixOwn map[uint32]blockID  // /16 prefix -> owner
	nextBlock int

	asOrg map[int]string
}

type blockID struct {
	cc  string
	asn int
}

type ipBlock struct {
	prefixes []uint32 // allocated /16 prefixes (a<<8|b)
	nextHost int      // next host index within the newest prefix
}

// NewDB builds the database with the curated country table.
func NewDB() *DB {
	db := &DB{
		byCode:    make(map[string]int, len(countries)),
		blocks:    make(map[string]*ipBlock),
		prefixOwn: make(map[uint32]blockID),
		asOrg:     make(map[int]string, len(HostedASes)),
	}
	db.countries = append(db.countries, countries...)
	weights := make([]float64, len(db.countries))
	for i, c := range db.countries {
		db.byCode[c.Code] = i
		weights[i] = c.MTAWeight
	}
	db.sampler = simrng.NewWeighted(weights)
	for _, a := range HostedASes {
		db.asOrg[a.Number] = a.Org
	}
	return db
}

// Countries returns the country table in declaration order (descending
// rough popularity).
func (db *DB) Countries() []Country { return db.countries }

// Country returns the country with the given ISO code.
func (db *DB) Country(code string) (Country, bool) {
	i, ok := db.byCode[code]
	if !ok {
		return Country{}, false
	}
	return db.countries[i], true
}

// SampleCountry draws a receiver country according to the Figure-4 MTA
// distribution.
func (db *DB) SampleCountry(r *simrng.RNG) Country {
	return db.countries[db.sampler.Sample(r)]
}

// GenericASN returns the synthetic per-country access AS used for
// domains that host their own MX. Numbers are stable and outside the
// well-known registry above.
func GenericASN(countryCode string) int {
	h := fnv.New32a()
	h.Write([]byte("as:" + countryCode))
	return 60000 + int(h.Sum32()%4000)
}

// ASOrg returns the organization name for an AS number, synthesizing a
// name for generic per-country ASes.
func (db *DB) ASOrg(asn int) string {
	if org, ok := db.asOrg[asn]; ok {
		return org
	}
	return fmt.Sprintf("AS%d Regional ISP", asn)
}

// RegisterASOrg records an organization name for an AS number (used for
// generic country ASes so reports can show a stable label).
func (db *DB) RegisterASOrg(asn int, org string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.asOrg[asn]; !ok {
		db.asOrg[asn] = org
	}
}

// firstOctets are the safe public-looking first octets used by the
// synthetic allocator (avoiding 0, 10, 127, 169, 172, 192, 198, 203,
// 224+ and other special ranges).
var firstOctets = func() []int {
	skip := map[int]bool{10: true, 100: true, 127: true, 169: true,
		172: true, 192: true, 198: true, 203: true}
	var v []int
	for o := 5; o <= 223; o++ {
		if !skip[o] {
			v = append(v, o)
		}
	}
	return v
}()

const hostsPerPrefix = 62500 // 250*250 usable hosts per /16

// AllocIP returns the next synthetic IPv4 address for an MTA located in
// the given country and AS. Addresses from the same (country, AS) pair
// share /16 prefixes so that reverse lookup is exact.
func (db *DB) AllocIP(countryCode string, asn int) string {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := fmt.Sprintf("%s/%d", countryCode, asn)
	b := db.blocks[key]
	if b == nil {
		b = &ipBlock{}
		db.blocks[key] = b
	}
	if len(b.prefixes) == 0 || b.nextHost >= hostsPerPrefix {
		p := db.allocPrefixLocked()
		db.prefixOwn[p] = blockID{cc: countryCode, asn: asn}
		b.prefixes = append(b.prefixes, p)
		b.nextHost = 0
	}
	p := b.prefixes[len(b.prefixes)-1]
	h := b.nextHost
	b.nextHost++
	return fmt.Sprintf("%d.%d.%d.%d", p>>8, p&0xff, h/250, h%250+1)
}

func (db *DB) allocPrefixLocked() uint32 {
	id := db.nextBlock
	db.nextBlock++
	first := firstOctets[(id/250)%len(firstOctets)]
	second := id % 250
	return uint32(first)<<8 | uint32(second)
}

// Lookup maps a synthetic IP back to its country code and AS number.
// Unknown addresses return ok=false (the analysis treats them like
// ip-api lookup failures).
func (db *DB) Lookup(ip string) (countryCode string, asn int, ok bool) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(ip, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return "", 0, false
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	own, ok := db.prefixOwn[uint32(a)<<8|uint32(b)]
	if !ok {
		return "", 0, false
	}
	return own.cc, own.asn, true
}

// pairTimeoutMult captures the proxy-pair anomalies Figure 8 highlights:
// deliveries from Hong Kong behave very differently for specific
// destinations (HK→Namibia 35.11% vs HK→Belize 0.34%).
var pairTimeoutMult = map[[2]string]float64{
	{"HK", "NA"}: 1.50, {"HK", "RW"}: 3.10, {"HK", "BZ"}: 0.015,
	{"HK", "NP"}: 0.035, {"HK", "SY"}: 0.13, {"HK", "KE"}: 0.70,
	{"HK", "KG"}: 0.90, {"HK", "LI"}: 1.0, {"HK", "GE"}: 0.40,
	{"HK", "MN"}: 0.08, {"HK", "ZA"}: 0.02, {"HK", "PR"}: 1.45,
	{"HK", "MA"}: 0.42, {"HK", "SV"}: 0.76, {"HK", "DO"}: 0.96,
	{"GB", "NA"}: 1.15, {"GB", "DO"}: 0.34, {"DE", "NA"}: 1.0,
	{"DE", "BZ"}: 0.02, {"DE", "MN"}: 0.30,
}

// pairLatencyMult captures the Appendix-C observation that the outgoing
// proxy's location shifts latency for a few countries dramatically
// (Hong Kong→Cambodia 8.93 s median vs ~79 s from elsewhere).
var pairLatencyMult = map[[2]string]float64{
	{"HK", "KH"}: 0.107,
	{"HK", "BN"}: 0.60,
	{"SG", "KH"}: 0.25,
	{"HK", "AO"}: 1.8,
	{"DE", "AO"}: 0.55,
	{"US", "BO"}: 0.50,
	{"HK", "BO"}: 1.9,
}

// TimeoutProb returns the probability that an SMTP session from a proxy
// in proxyCC to a receiver in rcvrCC times out (T14). The base rate is a
// property of the receiver country's infrastructure; the proxy location
// modulates it (Figure 8's rows differ per sender country).
func (db *DB) TimeoutProb(proxyCC, rcvrCC string) float64 {
	c, ok := db.Country(rcvrCC)
	if !ok {
		return 0.02
	}
	m := 1.0
	if v, ok := pairTimeoutMult[[2]string{proxyCC, rcvrCC}]; ok {
		m = v
	} else {
		m = hashJitter("to:"+proxyCC+rcvrCC, 0.80, 1.20)
	}
	p := c.TimeoutBase * m
	if p > 0.9 {
		p = 0.9
	}
	return p
}

// MedianLatencyMS returns the median session latency in milliseconds for
// deliveries from a proxy in proxyCC to a receiver in rcvrCC.
func (db *DB) MedianLatencyMS(proxyCC, rcvrCC string) float64 {
	c, ok := db.Country(rcvrCC)
	if !ok {
		return 15000
	}
	m := 1.0
	if v, ok := pairLatencyMult[[2]string{proxyCC, rcvrCC}]; ok {
		m = v
	} else {
		m = hashJitter("lat:"+proxyCC+rcvrCC, 0.85, 1.15)
	}
	return c.MedianLatencySec * 1000 * m
}

// hashJitter maps a key deterministically into [lo, hi].
func hashJitter(key string, lo, hi float64) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	u := float64(h.Sum64()%1e6) / 1e6
	return lo + u*(hi-lo)
}

// TopCountriesByWeight returns the n highest-MTAWeight country codes,
// useful for tests and reports.
func (db *DB) TopCountriesByWeight(n int) []string {
	idx := make([]int, len(db.countries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return db.countries[idx[a]].MTAWeight > db.countries[idx[b]].MTAWeight
	})
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = db.countries[idx[i]].Code
	}
	return out
}
