// Package geo is the reproduction's substitute for the ip-api geolocation
// service and per-country Internet-quality statistics the paper relies on.
// It provides a deterministic synthetic IPv4 allocator, a curated country
// database (covering every country named in the paper's tables and
// figures), an AS registry seeded with the paper's Table 4, and the
// network-quality model that drives SMTP latency (Figure 10, Appendix C)
// and timeout rates (Figure 8).
package geo

// Country describes one receiver country/region in the world model.
type Country struct {
	Code      string // ISO 3166-1 alpha-2
	Name      string
	Continent string

	// MTAWeight is the relative share of receiver MTAs located in the
	// country (Figure 4: US 28.53%, DE 10.59%, CA 5.42%, ...).
	MTAWeight float64

	// MedianLatencySec is the median successful-delivery latency the
	// paper measured to the country (Figure 10; global median 14.03 s,
	// Singapore 5.96 s, Cambodia 83.81 s).
	MedianLatencySec float64

	// TimeoutBase is the baseline probability that an SMTP session to
	// the country times out (T14), before per-proxy-pair adjustment
	// (Figure 8).
	TimeoutBase float64

	// FastInternet reports bandwidth >= 25 Mbps per the World Population
	// Review split used in Appendix C.
	FastInternet bool
}

// ProxyRegion identifies one of the six countries/regions hosting
// Coremail's 34 proxy MTAs.
type ProxyRegion struct {
	Code    string
	Name    string
	Proxies int // number of proxy MTAs in the region (sums to 34)
}

// ProxyRegions lists the proxy deployment per Section 3.1: 34 proxy MTAs
// across the United States, Hong Kong, Germany, Singapore, the United
// Kingdom, and India. Figure 8 uses only US/DE/GB/HK as sender countries
// (SG and IN carry too little volume).
var ProxyRegions = []ProxyRegion{
	{"US", "United States", 10},
	{"HK", "Hong Kong", 8},
	{"DE", "Germany", 6},
	{"GB", "United Kingdom", 5},
	{"SG", "Singapore", 3},
	{"IN", "India", 2},
}

// countries is the curated database. Weights are relative; Lookup-time
// normalization makes them a distribution. Every country named in the
// paper's Tables 4-5 and Figures 8 and 10 appears here, with latency and
// timeout parameters set to reproduce the published shape.
var countries = []Country{
	// Major receiver locations (Figure 4 heat map).
	{"US", "United States", "North America", 28.53, 9.0, 0.010, true},
	{"DE", "Germany", "Europe", 10.59, 8.0, 0.010, true},
	{"CA", "Canada", "North America", 5.42, 9.5, 0.010, true},
	{"GB", "United Kingdom", "Europe", 4.40, 8.5, 0.010, true},
	{"FR", "France", "Europe", 3.30, 9.0, 0.012, true},
	{"NL", "Netherlands", "Europe", 2.90, 8.0, 0.010, true},
	{"JP", "Japan", "Asia", 2.80, 10.0, 0.012, true},
	{"AU", "Australia", "Oceania", 2.30, 12.0, 0.015, true},
	{"HK", "Hong Kong", "Asia", 2.10, 7.0, 0.010, true},
	{"CN", "China", "Asia", 1.90, 11.0, 0.020, true},
	{"IN", "India", "Asia", 1.85, 16.0, 0.030, false},
	{"BR", "Brazil", "South America", 1.60, 18.0, 0.030, false},
	{"SG", "Singapore", "Asia", 1.55, 5.96, 0.008, true},
	{"KR", "South Korea", "Asia", 1.50, 8.5, 0.010, true},
	{"RU", "Russia", "Europe", 1.45, 15.0, 0.030, true},
	{"IT", "Italy", "Europe", 1.40, 10.0, 0.015, true},
	{"ES", "Spain", "Europe", 1.20, 10.0, 0.014, true},
	{"TW", "Taiwan", "Asia", 1.15, 9.0, 0.012, true},
	{"SE", "Sweden", "Europe", 0.95, 8.0, 0.010, true},
	{"CH", "Switzerland", "Europe", 0.90, 8.0, 0.010, true},
	{"PL", "Poland", "Europe", 0.90, 10.5, 0.015, true},
	{"MX", "Mexico", "North America", 0.85, 17.0, 0.030, false},
	{"ID", "Indonesia", "Asia", 0.80, 19.0, 0.040, false},
	{"TR", "Turkey", "Asia", 0.75, 15.0, 0.030, false},
	{"TH", "Thailand", "Asia", 0.70, 16.0, 0.030, true},
	{"MY", "Malaysia", "Asia", 0.65, 14.0, 0.025, true},
	{"VN", "Vietnam", "Asia", 0.60, 18.0, 0.035, false},
	{"AR", "Argentina", "South America", 0.55, 19.0, 0.035, false},
	{"ZA", "South Africa", "Africa", 0.50, 20.0, 0.078, false},
	{"AE", "United Arab Emirates", "Asia", 0.50, 13.0, 0.020, true},
	{"IL", "Israel", "Asia", 0.45, 11.0, 0.015, true},
	{"BE", "Belgium", "Europe", 0.45, 8.5, 0.010, true},
	{"AT", "Austria", "Europe", 0.40, 8.5, 0.010, true},
	{"DK", "Denmark", "Europe", 0.40, 8.0, 0.010, true},
	{"NO", "Norway", "Europe", 0.38, 8.0, 0.010, true},
	{"FI", "Finland", "Europe", 0.36, 8.5, 0.010, true},
	{"IE", "Ireland", "Europe", 0.35, 8.5, 0.010, true},
	{"PT", "Portugal", "Europe", 0.34, 10.0, 0.014, true},
	{"CZ", "Czechia", "Europe", 0.33, 9.5, 0.013, true},
	{"GR", "Greece", "Europe", 0.30, 12.0, 0.020, true},
	{"HU", "Hungary", "Europe", 0.28, 10.5, 0.016, true},
	{"PH", "Philippines", "Asia", 0.45, 20.0, 0.045, false},
	{"PK", "Pakistan", "Asia", 0.35, 24.0, 0.060, false},
	{"BD", "Bangladesh", "Asia", 0.28, 26.0, 0.065, false},
	{"NG", "Nigeria", "Africa", 0.22, 28.0, 0.100, false},
	{"EG", "Egypt", "Africa", 0.25, 25.0, 0.110, false},
	{"KE", "Kenya", "Africa", 0.15, 27.0, 0.115, false},
	{"MA", "Morocco", "Africa", 0.15, 24.0, 0.085, false},
	{"CI", "Ivory Coast", "Africa", 0.08, 30.0, 0.082, false},
	{"CL", "Chile", "South America", 0.30, 76.29, 0.040, true},
	{"CO", "Colombia", "South America", 0.28, 20.0, 0.038, false},
	{"PE", "Peru", "South America", 0.20, 22.0, 0.040, false},
	{"NZ", "New Zealand", "Oceania", 0.30, 11.0, 0.014, true},
	{"SA", "Saudi Arabia", "Asia", 0.30, 14.0, 0.022, true},
	{"QA", "Qatar", "Asia", 0.18, 13.0, 0.020, true},
	{"IR", "Iran", "Asia", 0.35, 22.0, 0.050, false},
	{"IQ", "Iraq", "Asia", 0.10, 26.0, 0.070, false},
	{"UA", "Ukraine", "Europe", 0.30, 14.0, 0.030, true},
	{"RO", "Romania", "Europe", 0.28, 12.0, 0.035, true},
	{"BG", "Bulgaria", "Europe", 0.18, 12.0, 0.022, true},
	{"RS", "Serbia", "Europe", 0.14, 13.0, 0.024, true},
	{"HR", "Croatia", "Europe", 0.12, 11.0, 0.018, true},
	{"SK", "Slovakia", "Europe", 0.16, 14.0, 0.120, true},
	{"LV", "Latvia", "Europe", 0.12, 10.0, 0.016, true},
	{"LT", "Lithuania", "Europe", 0.12, 10.0, 0.016, true},
	{"EE", "Estonia", "Europe", 0.10, 9.5, 0.014, true},
	{"LI", "Liechtenstein", "Europe", 0.02, 16.0, 0.100, true},
	{"ME", "Montenegro", "Europe", 0.03, 18.0, 0.060, false},
	{"MM", "Myanmar", "Asia", 0.08, 28.0, 0.070, false},
	{"KH", "Cambodia", "Asia", 0.07, 83.81, 0.075, false},
	{"NP", "Nepal", "Asia", 0.07, 26.0, 0.125, false},
	{"LK", "Sri Lanka", "Asia", 0.10, 22.0, 0.050, false},
	{"MN", "Mongolia", "Asia", 0.04, 24.0, 0.078, false},
	{"KG", "Kyrgyzstan", "Asia", 0.04, 26.0, 0.100, false},
	{"TJ", "Tajikistan", "Asia", 0.03, 28.0, 0.120, false},
	{"KZ", "Kazakhstan", "Asia", 0.12, 18.0, 0.040, false},
	{"UZ", "Uzbekistan", "Asia", 0.08, 22.0, 0.055, false},
	{"GE", "Georgia", "Asia", 0.06, 20.0, 0.080, false},
	{"AM", "Armenia", "Asia", 0.05, 20.0, 0.060, false},
	{"AZ", "Azerbaijan", "Asia", 0.06, 20.0, 0.058, false},
	{"SY", "Syria", "Asia", 0.04, 30.0, 0.135, false},
	{"PS", "Palestine", "Asia", 0.04, 27.0, 0.112, false},
	{"JO", "Jordan", "Asia", 0.10, 18.0, 0.040, false},
	{"LB", "Lebanon", "Asia", 0.08, 20.0, 0.050, false},
	{"BN", "Brunei", "Asia", 0.03, 16.0, 0.045, true},
	{"VE", "Venezuela", "South America", 0.08, 30.0, 0.095, false},
	{"BO", "Bolivia", "South America", 0.06, 26.0, 0.060, false},
	{"EC", "Ecuador", "South America", 0.10, 22.0, 0.045, false},
	{"DO", "Dominican Republic", "North America", 0.07, 24.0, 0.130, false},
	{"SV", "El Salvador", "North America", 0.04, 26.0, 0.145, false},
	{"BZ", "Belize", "North America", 0.02, 30.0, 0.150, false},
	{"PR", "Puerto Rico", "North America", 0.05, 18.0, 0.079, true},
	{"GL", "Greenland", "North America", 0.01, 66.85, 0.060, false},
	{"NA", "Namibia", "Africa", 0.02, 34.0, 0.240, false},
	{"RW", "Rwanda", "Africa", 0.02, 32.0, 0.170, false},
	{"ZW", "Zimbabwe", "Africa", 0.03, 30.0, 0.160, false},
	{"MG", "Madagascar", "Africa", 0.03, 31.0, 0.150, false},
	{"TZ", "Tanzania", "Africa", 0.04, 77.49, 0.120, false},
	{"AO", "Angola", "Africa", 0.03, 64.92, 0.110, false},
	{"GH", "Ghana", "Africa", 0.08, 26.0, 0.080, false},
	{"SN", "Senegal", "Africa", 0.05, 27.0, 0.078, false},
	{"ET", "Ethiopia", "Africa", 0.05, 30.0, 0.100, false},
	{"UG", "Uganda", "Africa", 0.04, 29.0, 0.095, false},
	{"ZM", "Zambia", "Africa", 0.03, 30.0, 0.100, false},
	{"MZ", "Mozambique", "Africa", 0.03, 31.0, 0.105, false},
	{"CM", "Cameroon", "Africa", 0.04, 29.0, 0.090, false},
	{"DZ", "Algeria", "Africa", 0.10, 24.0, 0.070, false},
	{"TN", "Tunisia", "Africa", 0.08, 22.0, 0.060, false},
}
