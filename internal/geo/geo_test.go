package geo

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/simrng"
)

func TestProxyRegionsSumTo34(t *testing.T) {
	sum := 0
	for _, r := range ProxyRegions {
		sum += r.Proxies
	}
	if sum != 34 {
		t.Errorf("proxy MTAs sum to %d, paper says 34", sum)
	}
	if len(ProxyRegions) != 6 {
		t.Errorf("%d proxy regions, paper says 6", len(ProxyRegions))
	}
}

func TestCountryTableIntegrity(t *testing.T) {
	db := NewDB()
	seen := map[string]bool{}
	for _, c := range db.Countries() {
		if seen[c.Code] {
			t.Errorf("duplicate country code %s", c.Code)
		}
		seen[c.Code] = true
		if c.MTAWeight < 0 || c.MedianLatencySec <= 0 || c.TimeoutBase < 0 || c.TimeoutBase > 1 {
			t.Errorf("country %s has out-of-range parameters: %+v", c.Code, c)
		}
		if c.Continent == "" || c.Name == "" {
			t.Errorf("country %s missing name/continent", c.Code)
		}
	}
	// Every country named in the paper's tables/figures must exist.
	for _, code := range []string{
		"US", "DE", "CA", "GB", "HK", "SG", "IN", // Fig 4 + proxies
		"NA", "RW", "SV", "BZ", "DO", "NP", "SK", "SY", "KE", "PS",
		"EG", "LI", "KG", "NG", "MA", "CI", "GE", "PR", "MN", "ZA", // Fig 8
		"VE", "TJ", "QA", "RO", "NZ", "LV", "IR", "MM", // Table 5 hard
		"ME", "ZW", "MG", "BN", // Table 5 soft
		"KH", "TZ", "CL", "GL", "AO", // Fig 10 slowest
	} {
		if !seen[code] {
			t.Errorf("paper country %s missing from table", code)
		}
	}
}

func TestFigure4TopShares(t *testing.T) {
	db := NewDB()
	us, _ := db.Country("US")
	de, _ := db.Country("DE")
	ca, _ := db.Country("CA")
	if us.MTAWeight != 28.53 || de.MTAWeight != 10.59 || ca.MTAWeight != 5.42 {
		t.Errorf("Figure 4 anchor weights drifted: US=%v DE=%v CA=%v",
			us.MTAWeight, de.MTAWeight, ca.MTAWeight)
	}
	top := db.TopCountriesByWeight(3)
	if top[0] != "US" || top[1] != "DE" || top[2] != "CA" {
		t.Errorf("top-3 countries %v, want [US DE CA]", top)
	}
}

func TestSampleCountryDistribution(t *testing.T) {
	db := NewDB()
	r := simrng.New(1)
	const n = 200000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[db.SampleCountry(r).Code]++
	}
	var total float64
	for _, c := range db.Countries() {
		total += c.MTAWeight
	}
	usWant := 28.53 / total
	usGot := float64(counts["US"]) / n
	if math.Abs(usGot-usWant) > 0.01 {
		t.Errorf("US sample share %g want %g", usGot, usWant)
	}
}

func TestAllocAndLookupRoundTrip(t *testing.T) {
	db := NewDB()
	cases := []struct {
		cc  string
		asn int
	}{{"US", 8075}, {"DE", GenericASN("DE")}, {"NA", GenericASN("NA")}, {"US", 8075}}
	for _, c := range cases {
		ip := db.AllocIP(c.cc, c.asn)
		gotCC, gotASN, ok := db.Lookup(ip)
		if !ok || gotCC != c.cc || gotASN != c.asn {
			t.Errorf("Lookup(%s) = (%s,%d,%v), want (%s,%d,true)", ip, gotCC, gotASN, ok, c.cc, c.asn)
		}
	}
}

func TestAllocIPUnique(t *testing.T) {
	db := NewDB()
	seen := map[string]bool{}
	for i := 0; i < 100000; i++ {
		ip := db.AllocIP("US", 8075)
		if seen[ip] {
			t.Fatalf("duplicate IP %s at allocation %d", ip, i)
		}
		seen[ip] = true
	}
}

func TestAllocIPAvoidsReservedFirstOctets(t *testing.T) {
	db := NewDB()
	reserved := map[string]bool{"0": true, "10": true, "127": true,
		"169": true, "172": true, "192": true, "198": true,
		"203": true, "224": true, "255": true}
	for i := 0; i < 1000; i++ {
		ip := db.AllocIP("FR", GenericASN("FR")+i) // force many blocks
		first := ip[:strings.IndexByte(ip, '.')]
		if reserved[first] {
			t.Fatalf("allocated IP %s in reserved first octet", ip)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	db := NewDB()
	if _, _, ok := db.Lookup("9.9.9.9"); ok {
		t.Error("Lookup of never-allocated prefix should fail")
	}
	if _, _, ok := db.Lookup("not an ip"); ok {
		t.Error("Lookup of garbage should fail")
	}
}

func TestTimeoutProbAnchors(t *testing.T) {
	db := NewDB()
	// HK→NA is the paper's worst pair (35.11%); US→NA is 22.87%.
	hkNA := db.TimeoutProb("HK", "NA")
	usNA := db.TimeoutProb("US", "NA")
	if hkNA < 0.30 || hkNA > 0.40 {
		t.Errorf("HK→NA timeout prob %g, want ~0.35", hkNA)
	}
	if usNA < 0.18 || usNA > 0.29 {
		t.Errorf("US→NA timeout prob %g, want ~0.23", usNA)
	}
	// HK→BZ is nearly zero in Figure 8 (0.34%).
	if p := db.TimeoutProb("HK", "BZ"); p > 0.01 {
		t.Errorf("HK→BZ timeout prob %g, want <0.01", p)
	}
	// Good-infrastructure country stays low.
	if p := db.TimeoutProb("US", "DE"); p > 0.02 {
		t.Errorf("US→DE timeout prob %g, want ≈0.01", p)
	}
}

func TestTimeoutProbBounded(t *testing.T) {
	db := NewDB()
	f := func(pi, ci uint8) bool {
		proxy := ProxyRegions[int(pi)%len(ProxyRegions)].Code
		cc := db.Countries()[int(ci)%len(db.Countries())].Code
		p := db.TimeoutProb(proxy, cc)
		return p >= 0 && p <= 0.9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianLatencyAnchors(t *testing.T) {
	db := NewDB()
	// Singapore is the global minimum (5.96 s).
	sg := db.MedianLatencyMS("US", "SG")
	if sg < 4500 || sg > 7500 {
		t.Errorf("latency to SG %g ms, want ~5960", sg)
	}
	// Cambodia from HK is dramatically faster than from elsewhere.
	hkKH := db.MedianLatencyMS("HK", "KH")
	usKH := db.MedianLatencyMS("US", "KH")
	if hkKH >= usKH/4 {
		t.Errorf("HK→KH %g ms should be <<< US→KH %g ms", hkKH, usKH)
	}
	if usKH < 60000 {
		t.Errorf("US→KH %g ms, want ~80000", usKH)
	}
}

func TestASRegistry(t *testing.T) {
	db := NewDB()
	if org := db.ASOrg(8075); org != "Microsoft Corporation" {
		t.Errorf("ASOrg(8075)=%q", org)
	}
	if org := db.ASOrg(99999); !strings.Contains(org, "99999") {
		t.Errorf("generic ASOrg should embed the number, got %q", org)
	}
	db.RegisterASOrg(64999, "Test Net")
	if org := db.ASOrg(64999); org != "Test Net" {
		t.Errorf("RegisterASOrg not honored, got %q", org)
	}
	// Registering again must not overwrite.
	db.RegisterASOrg(64999, "Other")
	if org := db.ASOrg(64999); org != "Test Net" {
		t.Errorf("RegisterASOrg overwrote existing entry: %q", org)
	}
}

func TestGenericASNStable(t *testing.T) {
	if GenericASN("DE") != GenericASN("DE") {
		t.Error("GenericASN must be deterministic")
	}
	if GenericASN("DE") == GenericASN("FR") {
		t.Error("GenericASN collision between DE and FR")
	}
	if n := GenericASN("US"); n < 60000 || n >= 64000 {
		t.Errorf("GenericASN out of range: %d", n)
	}
}

func TestHashJitterRange(t *testing.T) {
	f := func(key string) bool {
		v := hashJitter(key, 0.8, 1.2)
		return v >= 0.8 && v <= 1.2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
