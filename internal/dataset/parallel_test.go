package dataset

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"
	"time"
)

// varied returns records exercising the full schema surface: empty and
// missing arrays, spam flags, multi-attempt histories, odd characters.
func varied(n int) []Record {
	start := time.Date(2022, 6, 14, 8, 0, 0, 0, time.UTC)
	out := make([]Record, n)
	for i := range out {
		r := Record{
			From:            fmt.Sprintf("u%d@sender%d.example", i, i%7),
			To:              fmt.Sprintf("v%d@rcpt%d.example", i, i%13),
			StartTime:       start.Add(time.Duration(i) * time.Second),
			EndTime:         start.Add(time.Duration(i)*time.Second + time.Minute),
			FromIP:          []string{"5.0.0.1"},
			ToIP:            []string{"20.0.0.9"},
			DeliveryResult:  []string{"550 5.1.1 User unknown: mailbox häßlich <x@y> not found"},
			DeliveryLatency: []int64{int64(i * 11)},
			EmailFlag:       "Normal",
		}
		switch i % 5 {
		case 1:
			r.DeliveryResult = []string{"421 4.7.0 Try again later", "250 2.0.0 OK"}
			r.FromIP = []string{"5.0.0.1", "5.0.0.2"}
			r.ToIP = []string{"20.0.0.9", "20.0.0.9"}
			r.DeliveryLatency = []int64{840, 120}
			r.EmailFlag = "Spam"
		case 2:
			r.FromIP, r.ToIP, r.DeliveryResult, r.DeliveryLatency = nil, nil, nil, nil
		case 3:
			r.ToIP = []string{""}
		}
		out[i] = r
	}
	return out
}

// TestDecoderMatchesUnmarshal differentially checks the fast path (and
// its fallback) against encoding/json on a table of edge cases.
func TestDecoderMatchesUnmarshal(t *testing.T) {
	lines := []string{
		`{"from":"a@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19","from_ip":["5.0.0.1"],"to_ip":["20.0.0.1"],"delivery_result":["550 no"],"delivery_latency":[54854],"email_flag":"Spam"}`,
		// whitespace everywhere
		` { "from" : "a@x.com" , "to" : "b@y.com" , "start_time" : "2022-06-14 16:30:35" , "end_time" : "2022-06-14 16:45:19" , "from_ip" : [ "5.0.0.1" , "5.0.0.2" ] , "to_ip" : [ ] , "delivery_result" : null , "delivery_latency" : [ 1 , -2 ] , "email_flag" : "" } `,
		// escape sequences, decoded on the fast path
		`{"from":"a@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19","delivery_result":["550 \"quoted\" text\\path\nline\t<x@y> é"],"email_flag":"Normal"}`,
		// surrogate pair, lone surrogate, and an invalid escape
		`{"from":"a@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19","delivery_result":["ok 😀 <x@y> A end"],"email_flag":"Normal"}`,
		`{"from":"a@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19","delivery_result":["lone \ud83d tail","pairless \ud83dx"],"email_flag":"Normal"}`,
		`{"from":"a@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19","delivery_result":["bad \x escape"]}`,
		// raw UTF-8 stays on the fast path
		`{"from":"å@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19","delivery_result":["452 böx füll"],"email_flag":"Normal"}`,
		// empty arrays vs null vs absent
		`{"from":"a@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19","from_ip":[],"to_ip":null,"delivery_latency":[]}`,
		// unknown key falls back (and is ignored there)
		`{"from":"a@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19","bogus":7}`,
		// duplicate key: last wins in both paths
		`{"from":"first@x.com","from":"second@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19"}`,
		// errors: bad JSON, bad timestamp, impossible date, bad latency
		`{"from":}`,
		`not json at all`,
		`{"from":"a@x.com","to":"b@y.com","start_time":"yesterday","end_time":"2022-06-14 16:45:19"}`,
		`{"from":"a@x.com","to":"b@y.com","start_time":"2022-02-30 16:30:35","end_time":"2022-06-14 16:45:19"}`,
		`{"from":"a@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19","delivery_latency":[1.5]}`,
		`{"from":"a@x.com","to":"b@y.com","end_time":"2022-06-14 16:45:19"}`,
		`{"from":"a@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19"} trailing`,
	}
	var d Decoder
	for i, line := range lines {
		var want Record
		wantErr := json.Unmarshal([]byte(line), &want)
		var got Record
		gotErr := d.Decode([]byte(line), &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("line %d: error mismatch: stdlib %v, decoder %v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Errorf("line %d: error text mismatch:\nstdlib:  %v\ndecoder: %v", i, wantErr, gotErr)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("line %d: record mismatch:\nstdlib:  %+v\ndecoder: %+v", i, want, got)
		}
		// Nil-ness must match too: MarshalJSON emits null vs [].
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if !bytes.Equal(gb, wb) {
			t.Errorf("line %d: re-marshal mismatch:\nstdlib:  %s\ndecoder: %s", i, wb, gb)
		}
	}
}

func TestDecoderRoundTripsVaried(t *testing.T) {
	var d Decoder
	for i, want := range varied(200) {
		b, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		var got Record
		if err := d.Decode(b, &got); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
}

// TestDecoderNoScratchAliasing: records must stay valid after the
// decoder processes further lines (the scratch is per-call).
func TestDecoderNoScratchAliasing(t *testing.T) {
	recs := varied(20)
	raws := make([][]byte, len(recs))
	for i := range recs {
		raws[i], _ = json.Marshal(recs[i])
	}
	var d Decoder
	got := make([]Record, len(recs))
	for i, raw := range raws {
		if err := d.Decode(raw, &got[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Fatalf("record %d mutated by later decodes", i)
		}
	}
}

// Test sizing: records from varied() are ~230 bytes, so testChunkLines
// of them span several testBlock-sized blocks — every boundary path is
// exercised with a small corpus.
const (
	testChunkLines = 256
	testBlock      = 8 << 10
)

func parallelDecodeAll(t *testing.T, data []byte, workers int) ([]Record, error) {
	t.Helper()
	p := newParallelReaderSize(bytes.NewReader(data), workers, testBlock)
	defer p.Close()
	var out []Record
	for {
		rec, ok := p.Next()
		if !ok {
			break
		}
		out = append(out, rec.Clone())
	}
	return out, p.Err()
}

// TestParallelReaderWorkerInvariance: 1, 4, and 16 workers must yield a
// record sequence identical to the serial ReaderSource.
func TestParallelReaderWorkerInvariance(t *testing.T) {
	recs := varied(3 * testChunkLines) // several chunks
	data := encodeJSONL(t, recs)
	want := Collect(NewReaderSource(bytes.NewReader(data)))
	for _, workers := range []int{1, 4, 16} {
		got, err := parallelDecodeAll(t, data, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: sequence differs from serial decode", workers)
		}
	}
}

// TestParallelReaderMalformedMidChunk: a bad line deep in the second
// chunk must surface the correct global line number, after yielding
// every record before it.
func TestParallelReaderMalformedMidChunk(t *testing.T) {
	recs := varied(2*testChunkLines + 50)
	data := encodeJSONL(t, recs)
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	badAt := testChunkLines + 100 // 1-based line number inside chunk 2
	lines[badAt-1] = []byte(`{"from": broken`)
	data = append(bytes.Join(lines, []byte("\n")), '\n')

	for _, workers := range []int{1, 4, 16} {
		got, err := parallelDecodeAll(t, data, workers)
		if len(got) != badAt-1 {
			t.Fatalf("workers=%d: got %d records before error, want %d", workers, len(got), badAt-1)
		}
		var le *LineError
		if !errors.As(err, &le) {
			t.Fatalf("workers=%d: error %v is not a LineError", workers, err)
		}
		if le.Line != badAt {
			t.Fatalf("workers=%d: error line %d, want %d", workers, le.Line, badAt)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("line %d", badAt)) {
			t.Fatalf("workers=%d: error %q does not name line %d", workers, err, badAt)
		}
	}
}

// TestParallelReaderTruncatedFinalLine: a record cut off mid-object is
// a decode error on the last line.
func TestParallelReaderTruncatedFinalLine(t *testing.T) {
	recs := varied(10)
	data := encodeJSONL(t, recs)
	data = data[:len(data)-20] // chop into the final JSON object
	got, err := parallelDecodeAll(t, data, 4)
	if len(got) != 9 {
		t.Fatalf("got %d records, want 9", len(got))
	}
	var le *LineError
	if !errors.As(err, &le) || le.Line != 10 {
		t.Fatalf("want LineError on line 10, got %v", err)
	}
}

// TestParallelReaderReadError: a truncated gzip stream must behave
// exactly like the serial ReaderSource over the same bytes — same
// record count, same error line, same torn-line/truncated-tail
// classification. (The cut usually lands mid-line, which both readers
// report as a decode error on that line; the parallel reader used to
// drop the whole partial chunk and report an after-line error a chunk
// early instead.)
func TestParallelReaderReadError(t *testing.T) {
	recs := varied(40)
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	zw.Write(encodeJSONL(t, recs))
	zw.Close()
	trunc := zbuf.Bytes()[:zbuf.Len()-30]

	serialRd, err := NewDecodingReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	serial := NewReaderSource(serialRd)
	want := Collect(serial)
	var wantLE *LineError
	if !errors.As(serial.Err(), &wantLE) {
		t.Fatalf("serial error %v is not a LineError", serial.Err())
	}

	for _, workers := range []int{1, 4, 16} {
		rd, err := NewDecodingReader(bytes.NewReader(trunc))
		if err != nil {
			t.Fatal(err)
		}
		p := newParallelReaderSize(rd, workers, testBlock)
		got := Collect(p)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d records, serial got %d", workers, len(got), len(want))
		}
		var le *LineError
		if !errors.As(p.Err(), &le) {
			t.Fatalf("workers=%d: error %v is not a LineError", workers, p.Err())
		}
		if le.Line != wantLE.Line || le.After != wantLE.After {
			t.Fatalf("workers=%d: error at line %d (after=%v), serial at line %d (after=%v)",
				workers, le.Line, le.After, wantLE.Line, wantLE.After)
		}
		if p.Line() != serial.Line() {
			t.Fatalf("workers=%d: Line()=%d, serial Line()=%d", workers, p.Line(), serial.Line())
		}
		p.Close()
	}
}

// cutReader yields exactly n bytes of r, then fails with errTorn —
// precise control over where a stream tears relative to line framing.
type cutReader struct {
	r    io.Reader
	left int
}

var errTorn = errors.New("connection reset mid-stream")

func (c *cutReader) Read(b []byte) (int, error) {
	if c.left == 0 {
		return 0, errTorn
	}
	if len(b) > c.left {
		b = b[:c.left]
	}
	n, err := c.r.Read(b)
	c.left -= n
	return n, err
}

// TestParallelReaderTornMidChunk: a stream cut mid-line inside the
// second chunk of a gzip stream must yield every complete record
// before the cut (including the first partial chunk's worth) and
// report a decode error at the torn line's true global number.
func TestParallelReaderTornMidChunk(t *testing.T) {
	recs := varied(testChunkLines + 120)
	data := encodeJSONL(t, recs)

	// Find the byte offset 20 bytes into line (testChunkLines+50): mid-line,
	// mid-second-chunk.
	tornLine := testChunkLines + 50
	off := 0
	for i := 0; i < tornLine-1; i++ {
		off += bytes.IndexByte(data[off:], '\n') + 1
	}
	cut := off + 20

	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	zw.Write(data)
	zw.Close()

	for _, workers := range []int{1, 4} {
		zr, err := NewDecodingReader(bytes.NewReader(zbuf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		p := newParallelReaderSize(&cutReader{r: zr, left: cut}, workers, testBlock)
		got := Collect(p)
		if len(got) != tornLine-1 {
			t.Fatalf("workers=%d: %d records before torn line, want %d", workers, len(got), tornLine-1)
		}
		var le *LineError
		if !errors.As(p.Err(), &le) {
			t.Fatalf("workers=%d: %v is not a LineError", workers, p.Err())
		}
		if le.Line != tornLine || le.After {
			t.Fatalf("workers=%d: error line %d after=%v, want torn-line error at %d", workers, le.Line, le.After, tornLine)
		}
		if p.Line() != tornLine {
			t.Fatalf("workers=%d: Line()=%d, want %d", workers, p.Line(), tornLine)
		}
		p.Close()
	}
}

// TestParallelReaderTruncatedTailAtBoundary: a stream cut exactly on a
// line boundary mid-chunk has no torn line — every record before the
// cut must be yielded and the read error reported after the last
// complete line, not a chunk earlier.
func TestParallelReaderTruncatedTailAtBoundary(t *testing.T) {
	recs := varied(testChunkLines + 80)
	data := encodeJSONL(t, recs)

	lastLine := testChunkLines + 40
	off := 0
	for i := 0; i < lastLine; i++ {
		off += bytes.IndexByte(data[off:], '\n') + 1
	}

	for _, workers := range []int{1, 4} {
		p := newParallelReaderSize(&cutReader{r: bytes.NewReader(data), left: off}, workers, testBlock)
		got := Collect(p)
		if len(got) != lastLine {
			t.Fatalf("workers=%d: %d records, want %d", workers, len(got), lastLine)
		}
		var le *LineError
		if !errors.As(p.Err(), &le) {
			t.Fatalf("workers=%d: %v is not a LineError", workers, p.Err())
		}
		if !le.After || le.Line != lastLine {
			t.Fatalf("workers=%d: error line %d after=%v, want after-line error at %d", workers, le.Line, le.After, lastLine)
		}
		if !errors.Is(le, errTorn) {
			t.Fatalf("workers=%d: cause %v, want errTorn", workers, le.Err)
		}
		if p.Line() != lastLine {
			t.Fatalf("workers=%d: Line()=%d, want %d", workers, p.Line(), lastLine)
		}
		p.Close()
	}
}

// TestParallelReaderEarlyClose: closing mid-stream must release the
// pipeline without deadlocking, and blank lines keep global numbering.
func TestParallelReaderEarlyClose(t *testing.T) {
	recs := varied(4 * testChunkLines)
	data := encodeJSONL(t, recs)
	data = append([]byte("\n\n"), data...) // leading blanks shift line numbers
	p := newParallelReaderSize(bytes.NewReader(data), 4, testBlock)
	rec, ok := p.Next()
	if !ok || rec == nil {
		t.Fatal("no first record")
	}
	if p.Line() != 3 {
		t.Fatalf("first record on line %d, want 3 (after two blanks)", p.Line())
	}
	p.Close()
	if p.Err() != nil {
		t.Fatalf("unexpected error after close: %v", p.Err())
	}
}

func TestOpenParallel(t *testing.T) {
	recs := varied(120)
	dir := t.TempDir()
	path := dir + "/data.jsonl"
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	src, err := OpenParallel(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := Collect(src)
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("OpenParallel sequence differs from input")
	}
}

func BenchmarkDecoderDecode(b *testing.B) {
	raw, _ := json.Marshal(sampleRecord())
	var d Decoder
	var r Record
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Decode(raw, &r); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkParallelDecode(b *testing.B, workers int) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := varied(5000)
	for i := range recs {
		w.Write(&recs[i])
	}
	w.Flush()
	data := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewParallelReader(bytes.NewReader(data), workers)
		n := 0
		for {
			if _, ok := p.Next(); !ok {
				break
			}
			n++
		}
		p.Close()
		if p.Err() != nil || n != len(recs) {
			b.Fatalf("n=%d err=%v", n, p.Err())
		}
	}
}

func BenchmarkParallelDecode1(b *testing.B) { benchmarkParallelDecode(b, 1) }
func BenchmarkParallelDecode4(b *testing.B) { benchmarkParallelDecode(b, 4) }
