package dataset

import (
	"bytes"
	"errors"
	"io"
	"strconv"
	"sync"
	"testing"
	"testing/iotest"
	"time"
)

func numberedRecords(n int) []Record {
	recs := sampleRecords(n)
	for i := range recs {
		recs[i].From = "u" + strconv.Itoa(i) + "@s.example"
	}
	return recs
}

// TestPipeBatchRoundTrip: WriteBatch through a buffer smaller than the
// batch, drained by NextBatch with a mismatched batch size, preserves
// order and count — the wrap-around copy paths on both sides.
func TestPipeBatchRoundTrip(t *testing.T) {
	recs := numberedRecords(257)
	p := NewPipe(7) // forces many ring wraps on both sides
	go func() {
		n, err := p.WriteBatch(recs)
		if err != nil || n != len(recs) {
			t.Errorf("WriteBatch = %d, %v; want %d, nil", n, err, len(recs))
		}
		p.Close()
	}()
	var got []Record
	buf := make([]Record, 5) // not a divisor of 7 or 257
	for {
		n, ok := p.NextBatch(buf)
		if !ok {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(recs) {
		t.Fatalf("drained %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].From != recs[i].From {
			t.Fatalf("record %d: got %q, want %q", i, got[i].From, recs[i].From)
		}
	}
}

// TestPipeBatchInterleavesWithSingle: batch and single-record calls on
// the same pipe cooperate — Write/WriteBatch producers against a
// Next/NextBatch consumer still deliver everything in per-producer
// order.
func TestPipeBatchInterleavesWithSingle(t *testing.T) {
	recs := numberedRecords(100)
	p := NewPipe(4)
	go func() {
		for i := 0; i < len(recs); {
			if i%3 == 0 {
				end := i + 7
				if end > len(recs) {
					end = len(recs)
				}
				p.WriteBatch(recs[i:end])
				i = end
			} else {
				p.Write(&recs[i])
				i++
			}
		}
		p.Close()
	}()
	var got []Record
	buf := make([]Record, 3)
	for flip := 0; ; flip++ {
		if flip%2 == 0 {
			r, ok := p.Next()
			if !ok {
				break
			}
			got = append(got, *r)
		} else {
			n, ok := p.NextBatch(buf)
			if !ok {
				break
			}
			got = append(got, buf[:n]...)
		}
	}
	if len(got) != len(recs) {
		t.Fatalf("drained %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].From != recs[i].From {
			t.Fatalf("record %d: got %q, want %q", i, got[i].From, recs[i].From)
		}
	}
}

// TestPipeWriteBatchUnblocksOnCloseRead: a WriteBatch blocked on a full
// buffer fails with ErrClosedPipe when the consumer aborts, reporting
// the short count.
func TestPipeWriteBatchUnblocksOnCloseRead(t *testing.T) {
	recs := numberedRecords(50)
	p := NewPipe(4)
	done := make(chan struct{})
	var n int
	var err error
	go func() {
		defer close(done)
		n, err = p.WriteBatch(recs)
	}()
	time.Sleep(10 * time.Millisecond) // let the writer fill and block
	p.CloseRead()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WriteBatch still blocked after CloseRead")
	}
	if !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("WriteBatch error = %v, want ErrClosedPipe", err)
	}
	if n >= len(recs) {
		t.Fatalf("WriteBatch reported %d records enqueued after abort", n)
	}
}

// TestPipeNextBatchDoesNotPinRecords: consumed ring slots are zeroed,
// matching Next's do-not-pin guarantee.
func TestPipeNextBatchDoesNotPinRecords(t *testing.T) {
	recs := numberedRecords(6)
	p := NewPipe(8)
	if _, err := p.WriteBatch(recs); err != nil {
		t.Fatal(err)
	}
	buf := make([]Record, 4)
	p.NextBatch(buf)
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := 0; i < 4; i++ {
		if p.buf[i].From != "" {
			t.Fatalf("slot %d still holds record %q after NextBatch", i, p.buf[i].From)
		}
	}
}

// TestReadAheadDeliversExactBytes pins ReadAhead to a plain io.ReadAll
// of the same stream, across block boundaries and a one-byte reader.
func TestReadAheadDeliversExactBytes(t *testing.T) {
	src := make([]byte, readAheadBlock*2+12345)
	for i := range src {
		src[i] = byte(i * 31)
	}
	for _, wrap := range []func(io.Reader) io.Reader{
		func(r io.Reader) io.Reader { return r },
		iotest.OneByteReader,
		iotest.HalfReader,
	} {
		ra := NewReadAhead(wrap(bytes.NewReader(src)), 2)
		got, err := io.ReadAll(ra)
		ra.Close()
		if err != nil {
			t.Fatalf("ReadAll: %v", err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("ReadAhead corrupted the stream: %d bytes, want %d", len(got), len(src))
		}
	}
}

// TestReadAheadSurfacesReadError: a mid-stream failure arrives after
// the bytes that preceded it, like a plain reader.
func TestReadAheadSurfacesReadError(t *testing.T) {
	src := []byte("hello world")
	ra := NewReadAhead(iotest.TimeoutReader(iotest.OneByteReader(bytes.NewReader(src))), 2)
	defer ra.Close()
	got, err := io.ReadAll(ra)
	if err == nil {
		t.Fatal("expected a read error")
	}
	if len(got) == 0 {
		t.Fatal("bytes before the failure were dropped")
	}
}

// TestReadAheadCloseReleasesPump: closing early (consumer abandons the
// stream) must not leak the pump goroutine even when it is blocked on
// a full block channel.
func TestReadAheadCloseReleasesPump(t *testing.T) {
	src := make([]byte, readAheadBlock*16)
	ra := NewReadAhead(bytes.NewReader(src), 1)
	buf := make([]byte, 10)
	ra.Read(buf) // ensure the pump has started delivering
	done := make(chan struct{})
	go func() {
		ra.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung")
	}
}

// TestReadAheadConcurrentWithPipe is a smoke test under -race: many
// pipes and readers at once.
func TestReadAheadConcurrentWithPipe(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := bytes.Repeat([]byte("abc123\n"), 10000)
			ra := NewReadAhead(bytes.NewReader(src), 2)
			defer ra.Close()
			got, err := io.ReadAll(ra)
			if err != nil || !bytes.Equal(got, src) {
				t.Errorf("stream mismatch: err=%v len=%d", err, len(got))
			}
		}()
	}
	wg.Wait()
}
