package dataset

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzDecoderMatchesEncodingJSON pins the fast-path decoder to
// encoding/json over arbitrary inputs: same error presence, same error
// text, deep-equal records, and byte-identical re-marshaling (which
// covers the nil-vs-empty array distinction). The seeds walk the
// interesting boundaries — \uXXXX escapes, surrogate pairs (paired,
// lone, and pairless), raw UTF-8, empty/null/absent arrays, duplicate
// keys, and truncated tails of a valid record.
func FuzzDecoderMatchesEncodingJSON(f *testing.F) {
	valid := `{"from":"a@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19","from_ip":["1.2.3.4"],"to_ip":["5.6.7.8"],"delivery_result":["250 ok","451 4.7.1 try later"],"delivery_latency":[120,3500],"email_flag":"Normal"}`
	seeds := []string{
		valid,
		`{}`,
		`{"from":"quoted \"name\" <x@y>","to":"b\\u0040y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19"}`,
		`{"from":"\u0041\u00e5\u4f60","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19","delivery_result":["pair \ud83d\ude00 ok"]}`,
		`{"from":"a@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19","delivery_result":["lone \ud83d tail","pairless \ud83dx"]}`,
		`{"from":"å@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19","delivery_result":["452 böx füll"]}`,
		`{"from":"a@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19","from_ip":[],"to_ip":null,"delivery_latency":[]}`,
		`{"from":"first@x.com","from":"second@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19"}`,
		`{"from":"a@x.com","bogus":7}`,
		`{"delivery_latency":[-1,0,9223372036854775807]}`,
		`{"delivery_latency":[9223372036854775808]}`,
		`{"delivery_latency":[1.5]}`,
		`{"start_time":"2022-02-30 16:30:35"}`,
		`  {"from":"a@x.com","to":"b@y.com","start_time":"2022-06-14 16:30:35","end_time":"2022-06-14 16:45:19"}  `,
		`{"from":"ctrl \u0001 byte","to":"tab\there"}`,
		`not json at all`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	// Truncated tails of the valid record: every prefix boundary the
	// scanner can stop at.
	for i := 0; i < len(valid); i += 7 {
		f.Add([]byte(valid[:i]))
	}

	f.Fuzz(func(t *testing.T, line []byte) {
		var want Record
		wantErr := json.Unmarshal(line, &want)
		var d Decoder
		var got Record
		gotErr := d.Decode(bytes.Clone(line), &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch on %q: stdlib %v, decoder %v", line, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("error text mismatch on %q:\nstdlib:  %v\ndecoder: %v", line, wantErr, gotErr)
			}
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record mismatch on %q:\nstdlib:  %+v\ndecoder: %+v", line, want, got)
		}
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if !bytes.Equal(gb, wb) {
			t.Fatalf("re-marshal mismatch on %q:\nstdlib:  %s\ndecoder: %s", line, wb, gb)
		}
	})
}
