package dataset

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func sampleRecords(n int) []Record {
	start := time.Date(2023, 5, 1, 10, 0, 0, 0, time.UTC)
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{
			From:            "a@s.example",
			To:              "b@r.example",
			StartTime:       start.Add(time.Duration(i) * time.Minute),
			EndTime:         start.Add(time.Duration(i)*time.Minute + 2*time.Second),
			FromIP:          []string{"192.0.2.1"},
			ToIP:            []string{"198.51.100.9"},
			DeliveryResult:  []string{"250 2.0.0 OK"},
			DeliveryLatency: []int64{1500},
			EmailFlag:       "Normal",
		}
	}
	return out
}

func TestSliceSourceCollectRoundTrip(t *testing.T) {
	recs := sampleRecords(5)
	got := Collect(NewSliceSource(recs))
	if len(got) != len(recs) {
		t.Fatalf("collected %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if !got[i].StartTime.Equal(recs[i].StartTime) {
			t.Fatalf("record %d out of order", i)
		}
	}
}

func TestPipePreservesOrderAcrossGoroutines(t *testing.T) {
	recs := sampleRecords(100)
	p := NewPipe(4) // smaller than the record count to exercise blocking
	go func() {
		for i := range recs {
			p.Write(&recs[i])
		}
		p.Close()
	}()
	got := Collect(p)
	if len(got) != len(recs) {
		t.Fatalf("pipe delivered %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if !got[i].StartTime.Equal(recs[i].StartTime) {
			t.Fatalf("record %d out of order", i)
		}
	}
}

func TestReaderSourceMatchesReadAll(t *testing.T) {
	recs := sampleRecords(7)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var sink RecordSink = w // Writer must satisfy the streaming sink
	for i := range recs {
		if err := sink.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	all, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	src := NewReaderSource(bytes.NewReader(buf.Bytes()))
	streamed := Collect(src)
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(all) {
		t.Fatalf("streamed %d records, ReadAll %d", len(streamed), len(all))
	}
	for i := range streamed {
		if streamed[i].To != all[i].To || !streamed[i].StartTime.Equal(all[i].StartTime) {
			t.Fatalf("record %d differs between streaming and slurping", i)
		}
	}
}

func TestReaderSourceReportsDecodeError(t *testing.T) {
	src := NewReaderSource(strings.NewReader("{not json}\n"))
	if _, ok := src.Next(); ok {
		t.Fatal("Next succeeded on malformed input")
	}
	if src.Err() == nil {
		t.Fatal("Err() is nil after malformed input")
	}
}

// encodeJSONL renders records as a JSONL byte slice.
func encodeJSONL(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReaderSourceMalformedLineMidStreamIsLineNumbered(t *testing.T) {
	lines := encodeJSONL(t, sampleRecords(3))
	corrupt := bytes.Join([][]byte{
		bytes.TrimSuffix(lines, []byte("\n")),
		[]byte("{definitely not json}"),
		[]byte(""),
	}, []byte("\n"))
	src := NewReaderSource(bytes.NewReader(corrupt))
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("decoded %d records before the corrupt line, want 3", n)
	}
	err := src.Err()
	if err == nil {
		t.Fatal("Err() is nil after malformed mid-stream line")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error %q does not name line 4", err)
	}
}

func TestOpenDecodesGzipByMagicBytes(t *testing.T) {
	recs := sampleRecords(9)
	raw := encodeJSONL(t, recs)
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// Deliberately misleading extension: sniffing must win over names.
	path := filepath.Join(dir, "dataset.jsonl")
	if err := os.WriteFile(path, gz.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got := Collect(src)
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records from gzip file, want %d", len(got), len(recs))
	}

	plain, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(recs) {
		t.Fatalf("ReadFile decoded %d records from gzip file, want %d", len(plain), len(recs))
	}
}

func TestReaderSourceTruncatedGzipSurfacesError(t *testing.T) {
	raw := encodeJSONL(t, sampleRecords(50))
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	trunc := gz.Bytes()[:gz.Len()/2]
	r, err := NewDecodingReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	src := NewReaderSource(r)
	for {
		if _, ok := src.Next(); !ok {
			break
		}
	}
	if src.Err() == nil {
		t.Fatal("Err() is nil after truncated gzip stream")
	}
	if !strings.Contains(src.Err().Error(), "line") {
		t.Fatalf("truncated-gzip error %q carries no line position", src.Err())
	}
}

func TestPipeCloseReadUnblocksWriter(t *testing.T) {
	recs := sampleRecords(4)
	p := NewPipe(1)
	if err := p.Write(&recs[0]); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		// Buffer is full: this write blocks until CloseRead aborts it.
		errc <- p.Write(&recs[1])
	}()
	p.CloseRead()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosedPipe) {
			t.Fatalf("blocked write returned %v, want ErrClosedPipe", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write stayed blocked after CloseRead")
	}
	if err := p.Write(&recs[2]); !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("write after CloseRead returned %v, want ErrClosedPipe", err)
	}
	if _, ok := p.Next(); ok {
		t.Fatal("Next returned a record after CloseRead")
	}
	p.CloseRead() // idempotent
}

// TestPipeWriteAfterCloseErrors pins the write-side close semantics: a
// Write landing after Close must fail with ErrClosedPipe — not panic,
// not enqueue — while records accepted before the close stay readable.
func TestPipeWriteAfterCloseErrors(t *testing.T) {
	recs := sampleRecords(3)
	p := NewPipe(4)
	if err := p.Write(&recs[0]); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := p.Write(&recs[1]); !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("write after Close returned %v, want ErrClosedPipe", err)
	}
	got := Collect(p)
	if len(got) != 1 || !got[0].StartTime.Equal(recs[0].StartTime) {
		t.Fatalf("drained %d records after Close, want the 1 accepted", len(got))
	}
	p.Close() // idempotent
}

// TestPipeCloseVsWriteRace hammers the shutdown ordering the drain
// path depends on: writers blocked on a full buffer when the pipe
// closes (from either side) must wake with ErrClosedPipe, and every
// write must either error or have its record observed by the consumer
// — no deadlock, no silent loss. Run under -race.
func TestPipeCloseVsWriteRace(t *testing.T) {
	recs := sampleRecords(8)
	for round := 0; round < 200; round++ {
		p := NewPipe(2)
		const writers = 4
		var wrote atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < len(recs); i++ {
					if err := p.Write(&recs[i]); err != nil {
						if !errors.Is(err, ErrClosedPipe) {
							t.Errorf("write: %v", err)
						}
						return
					}
					wrote.Add(1)
				}
			}(w)
		}
		var read int64
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; ; i++ {
				if _, ok := p.Next(); !ok {
					return
				}
				read++
				if i == round%5 {
					// Abort mid-stream: blocked writers must not hang.
					p.CloseRead()
				}
			}
		}()
		wg.Wait()
		p.Close()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("consumer deadlocked after close")
		}
		// CloseRead discards buffered records, so read <= wrote always;
		// every successful Write before the abort was either consumed or
		// discarded deliberately — never stranded with a blocked writer.
		if read > wrote.Load() {
			t.Fatalf("read %d > wrote %d", read, wrote.Load())
		}
	}
}

// TestPipeZeroLossWhenProducerCloses checks the cooperative shutdown
// direction: if only the producer closes (no CloseRead), every
// accepted record reaches the consumer.
func TestPipeZeroLossWhenProducerCloses(t *testing.T) {
	recs := sampleRecords(16)
	p := NewPipe(3)
	var wrote atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range recs {
				if err := p.Write(&recs[i]); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				wrote.Add(1)
			}
		}()
	}
	go func() {
		wg.Wait()
		p.Close()
	}()
	got := Collect(p)
	if int64(len(got)) != wrote.Load() {
		t.Fatalf("consumed %d records, wrote %d", len(got), wrote.Load())
	}
}

func TestContextSourceStopsOnCancel(t *testing.T) {
	recs := sampleRecords(10)
	ctx, cancel := context.WithCancel(context.Background())
	src := NewContextSource(ctx, NewSliceSource(recs))
	for i := 0; i < 3; i++ {
		if _, ok := src.Next(); !ok {
			t.Fatalf("source dried up at record %d before cancel", i)
		}
	}
	cancel()
	if _, ok := src.Next(); ok {
		t.Fatal("source kept yielding after cancel")
	}
	if !errors.Is(src.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", src.Err())
	}
}

func TestRankFromCountsMatchesInEmailRank(t *testing.T) {
	recs := sampleRecords(6)
	recs[0].To = "x@dom-a.example"
	recs[1].To = "x@dom-a.example"
	recs[2].To = "x@dom-b.example"
	want := InEmailRank(recs)
	counts := map[string]int{}
	for i := range recs {
		counts[recs[i].ToDomain()]++
	}
	got := RankFromCounts(counts)
	if len(got) != len(want) {
		t.Fatalf("rank length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rank row %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}
