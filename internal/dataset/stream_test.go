package dataset

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleRecords(n int) []Record {
	start := time.Date(2023, 5, 1, 10, 0, 0, 0, time.UTC)
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{
			From:            "a@s.example",
			To:              "b@r.example",
			StartTime:       start.Add(time.Duration(i) * time.Minute),
			EndTime:         start.Add(time.Duration(i)*time.Minute + 2*time.Second),
			FromIP:          []string{"192.0.2.1"},
			ToIP:            []string{"198.51.100.9"},
			DeliveryResult:  []string{"250 2.0.0 OK"},
			DeliveryLatency: []int64{1500},
			EmailFlag:       "Normal",
		}
	}
	return out
}

func TestSliceSourceCollectRoundTrip(t *testing.T) {
	recs := sampleRecords(5)
	got := Collect(NewSliceSource(recs))
	if len(got) != len(recs) {
		t.Fatalf("collected %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if !got[i].StartTime.Equal(recs[i].StartTime) {
			t.Fatalf("record %d out of order", i)
		}
	}
}

func TestPipePreservesOrderAcrossGoroutines(t *testing.T) {
	recs := sampleRecords(100)
	p := NewPipe(4) // smaller than the record count to exercise blocking
	go func() {
		for i := range recs {
			p.Write(&recs[i])
		}
		p.Close()
	}()
	got := Collect(p)
	if len(got) != len(recs) {
		t.Fatalf("pipe delivered %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if !got[i].StartTime.Equal(recs[i].StartTime) {
			t.Fatalf("record %d out of order", i)
		}
	}
}

func TestReaderSourceMatchesReadAll(t *testing.T) {
	recs := sampleRecords(7)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var sink RecordSink = w // Writer must satisfy the streaming sink
	for i := range recs {
		if err := sink.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	all, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	src := NewReaderSource(bytes.NewReader(buf.Bytes()))
	streamed := Collect(src)
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(all) {
		t.Fatalf("streamed %d records, ReadAll %d", len(streamed), len(all))
	}
	for i := range streamed {
		if streamed[i].To != all[i].To || !streamed[i].StartTime.Equal(all[i].StartTime) {
			t.Fatalf("record %d differs between streaming and slurping", i)
		}
	}
}

func TestReaderSourceReportsDecodeError(t *testing.T) {
	src := NewReaderSource(strings.NewReader("{not json}\n"))
	if _, ok := src.Next(); ok {
		t.Fatal("Next succeeded on malformed input")
	}
	if src.Err() == nil {
		t.Fatal("Err() is nil after malformed input")
	}
}

// encodeJSONL renders records as a JSONL byte slice.
func encodeJSONL(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReaderSourceMalformedLineMidStreamIsLineNumbered(t *testing.T) {
	lines := encodeJSONL(t, sampleRecords(3))
	corrupt := bytes.Join([][]byte{
		bytes.TrimSuffix(lines, []byte("\n")),
		[]byte("{definitely not json}"),
		[]byte(""),
	}, []byte("\n"))
	src := NewReaderSource(bytes.NewReader(corrupt))
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("decoded %d records before the corrupt line, want 3", n)
	}
	err := src.Err()
	if err == nil {
		t.Fatal("Err() is nil after malformed mid-stream line")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error %q does not name line 4", err)
	}
}

func TestOpenDecodesGzipByMagicBytes(t *testing.T) {
	recs := sampleRecords(9)
	raw := encodeJSONL(t, recs)
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// Deliberately misleading extension: sniffing must win over names.
	path := filepath.Join(dir, "dataset.jsonl")
	if err := os.WriteFile(path, gz.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got := Collect(src)
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records from gzip file, want %d", len(got), len(recs))
	}

	plain, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(recs) {
		t.Fatalf("ReadFile decoded %d records from gzip file, want %d", len(plain), len(recs))
	}
}

func TestReaderSourceTruncatedGzipSurfacesError(t *testing.T) {
	raw := encodeJSONL(t, sampleRecords(50))
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	trunc := gz.Bytes()[:gz.Len()/2]
	r, err := NewDecodingReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	src := NewReaderSource(r)
	for {
		if _, ok := src.Next(); !ok {
			break
		}
	}
	if src.Err() == nil {
		t.Fatal("Err() is nil after truncated gzip stream")
	}
	if !strings.Contains(src.Err().Error(), "line") {
		t.Fatalf("truncated-gzip error %q carries no line position", src.Err())
	}
}

func TestPipeCloseReadUnblocksWriter(t *testing.T) {
	recs := sampleRecords(4)
	p := NewPipe(1)
	if err := p.Write(&recs[0]); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		// Buffer is full: this write blocks until CloseRead aborts it.
		errc <- p.Write(&recs[1])
	}()
	p.CloseRead()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosedPipe) {
			t.Fatalf("blocked write returned %v, want ErrClosedPipe", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("write stayed blocked after CloseRead")
	}
	if err := p.Write(&recs[2]); !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("write after CloseRead returned %v, want ErrClosedPipe", err)
	}
	if _, ok := p.Next(); ok {
		t.Fatal("Next returned a record after CloseRead")
	}
	p.CloseRead() // idempotent
}

func TestContextSourceStopsOnCancel(t *testing.T) {
	recs := sampleRecords(10)
	ctx, cancel := context.WithCancel(context.Background())
	src := NewContextSource(ctx, NewSliceSource(recs))
	for i := 0; i < 3; i++ {
		if _, ok := src.Next(); !ok {
			t.Fatalf("source dried up at record %d before cancel", i)
		}
	}
	cancel()
	if _, ok := src.Next(); ok {
		t.Fatal("source kept yielding after cancel")
	}
	if !errors.Is(src.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", src.Err())
	}
}

func TestRankFromCountsMatchesInEmailRank(t *testing.T) {
	recs := sampleRecords(6)
	recs[0].To = "x@dom-a.example"
	recs[1].To = "x@dom-a.example"
	recs[2].To = "x@dom-b.example"
	want := InEmailRank(recs)
	counts := map[string]int{}
	for i := range recs {
		counts[recs[i].ToDomain()]++
	}
	got := RankFromCounts(counts)
	if len(got) != len(want) {
		t.Fatalf("rank length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rank row %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}
