package dataset

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleRecords(n int) []Record {
	start := time.Date(2023, 5, 1, 10, 0, 0, 0, time.UTC)
	out := make([]Record, n)
	for i := range out {
		out[i] = Record{
			From:            "a@s.example",
			To:              "b@r.example",
			StartTime:       start.Add(time.Duration(i) * time.Minute),
			EndTime:         start.Add(time.Duration(i)*time.Minute + 2*time.Second),
			FromIP:          []string{"192.0.2.1"},
			ToIP:            []string{"198.51.100.9"},
			DeliveryResult:  []string{"250 2.0.0 OK"},
			DeliveryLatency: []int64{1500},
			EmailFlag:       "Normal",
		}
	}
	return out
}

func TestSliceSourceCollectRoundTrip(t *testing.T) {
	recs := sampleRecords(5)
	got := Collect(NewSliceSource(recs))
	if len(got) != len(recs) {
		t.Fatalf("collected %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if !got[i].StartTime.Equal(recs[i].StartTime) {
			t.Fatalf("record %d out of order", i)
		}
	}
}

func TestPipePreservesOrderAcrossGoroutines(t *testing.T) {
	recs := sampleRecords(100)
	p := NewPipe(4) // smaller than the record count to exercise blocking
	go func() {
		for i := range recs {
			p.Write(&recs[i])
		}
		p.Close()
	}()
	got := Collect(p)
	if len(got) != len(recs) {
		t.Fatalf("pipe delivered %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if !got[i].StartTime.Equal(recs[i].StartTime) {
			t.Fatalf("record %d out of order", i)
		}
	}
}

func TestReaderSourceMatchesReadAll(t *testing.T) {
	recs := sampleRecords(7)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var sink RecordSink = w // Writer must satisfy the streaming sink
	for i := range recs {
		if err := sink.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	all, err := ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	src := NewReaderSource(bytes.NewReader(buf.Bytes()))
	streamed := Collect(src)
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(all) {
		t.Fatalf("streamed %d records, ReadAll %d", len(streamed), len(all))
	}
	for i := range streamed {
		if streamed[i].To != all[i].To || !streamed[i].StartTime.Equal(all[i].StartTime) {
			t.Fatalf("record %d differs between streaming and slurping", i)
		}
	}
}

func TestReaderSourceReportsDecodeError(t *testing.T) {
	src := NewReaderSource(strings.NewReader("{not json}\n"))
	if _, ok := src.Next(); ok {
		t.Fatal("Next succeeded on malformed input")
	}
	if src.Err() == nil {
		t.Fatal("Err() is nil after malformed input")
	}
}

func TestRankFromCountsMatchesInEmailRank(t *testing.T) {
	recs := sampleRecords(6)
	recs[0].To = "x@dom-a.example"
	recs[1].To = "x@dom-a.example"
	recs[2].To = "x@dom-b.example"
	want := InEmailRank(recs)
	counts := map[string]int{}
	for i := range recs {
		counts[recs[i].ToDomain()]++
	}
	got := RankFromCounts(counts)
	if len(got) != len(want) {
		t.Fatalf("rank length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("rank row %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}
