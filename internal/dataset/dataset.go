// Package dataset defines the email-delivery record schema of the
// paper's Figure 3 and its JSONL serialization, plus the InEmailRank
// popularity list built from incoming-email counts per receiver domain.
// Every downstream analysis consumes only these records — the same
// inference constraint the paper worked under.
package dataset

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// TimeLayout is the timestamp format of Figure 3.
const TimeLayout = "2006-01-02 15:04:05"

// Record is one email's complete delivery history: parallel slices hold
// one entry per delivery attempt.
type Record struct {
	From      string    // sender address
	To        string    // receiver address
	StartTime time.Time // first attempt start
	EndTime   time.Time // last attempt end

	FromIP          []string // proxy MTA IP per attempt
	ToIP            []string // receiver MTA IP per attempt ("" if never connected)
	DeliveryResult  []string // NDR / acceptance line per attempt
	DeliveryLatency []int64  // per-attempt latency in milliseconds
	EmailFlag       string   // "Normal" or "Spam" (sender-ESP verdict)
}

// Attempts returns the number of delivery attempts.
func (r *Record) Attempts() int { return len(r.DeliveryResult) }

// FinalResult returns the last delivery_result line ("" if none).
func (r *Record) FinalResult() string {
	if len(r.DeliveryResult) == 0 {
		return ""
	}
	return r.DeliveryResult[len(r.DeliveryResult)-1]
}

// Succeeded reports whether the final attempt was accepted (2xx).
func (r *Record) Succeeded() bool {
	return strings.HasPrefix(r.FinalResult(), "2")
}

// ToDomain returns the receiver domain (lowercased part after '@').
func (r *Record) ToDomain() string { return domainOf(r.To) }

// FromDomain returns the sender domain.
func (r *Record) FromDomain() string { return domainOf(r.From) }

func domainOf(addr string) string {
	if i := strings.LastIndexByte(addr, '@'); i >= 0 {
		return strings.ToLower(addr[i+1:])
	}
	return ""
}

// Degree is the paper's bounce degree.
type Degree int

// Bounce degrees (Section 2.2).
const (
	NonBounced  Degree = iota // success on the first attempt
	SoftBounced               // success after ≥1 failed attempt
	HardBounced               // never succeeded
)

// String returns the paper's name for the degree.
func (d Degree) String() string {
	switch d {
	case NonBounced:
		return "non-bounced"
	case SoftBounced:
		return "soft-bounced"
	case HardBounced:
		return "hard-bounced"
	}
	return "?"
}

// BounceDegree classifies the record per Section 2.2: success on first
// attempt = non-bounced; eventual success = soft-bounced; otherwise
// hard-bounced.
func (r *Record) BounceDegree() Degree {
	if len(r.DeliveryResult) == 0 {
		return HardBounced
	}
	if strings.HasPrefix(r.DeliveryResult[0], "2") {
		return NonBounced
	}
	if r.Succeeded() {
		return SoftBounced
	}
	return HardBounced
}

// NDRs returns the non-2xx delivery_result lines (one per failed
// attempt) — the classifier's input.
func (r *Record) NDRs() []string {
	var out []string
	for _, line := range r.DeliveryResult {
		if !strings.HasPrefix(line, "2") {
			out = append(out, line)
		}
	}
	return out
}

// jsonRecord is the Figure-3 wire form.
type jsonRecord struct {
	From            string   `json:"from"`
	To              string   `json:"to"`
	StartTime       string   `json:"start_time"`
	EndTime         string   `json:"end_time"`
	FromIP          []string `json:"from_ip"`
	ToIP            []string `json:"to_ip"`
	DeliveryResult  []string `json:"delivery_result"`
	DeliveryLatency []int64  `json:"delivery_latency"`
	EmailFlag       string   `json:"email_flag"`
}

// MarshalJSON renders the Figure-3 JSON object.
func (r Record) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonRecord{
		From:            r.From,
		To:              r.To,
		StartTime:       r.StartTime.UTC().Format(TimeLayout),
		EndTime:         r.EndTime.UTC().Format(TimeLayout),
		FromIP:          r.FromIP,
		ToIP:            r.ToIP,
		DeliveryResult:  r.DeliveryResult,
		DeliveryLatency: r.DeliveryLatency,
		EmailFlag:       r.EmailFlag,
	})
}

// UnmarshalJSON parses the Figure-3 JSON object.
func (r *Record) UnmarshalJSON(b []byte) error {
	var j jsonRecord
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	start, err := time.Parse(TimeLayout, j.StartTime)
	if err != nil {
		return fmt.Errorf("dataset: bad start_time %q: %w", j.StartTime, err)
	}
	end, err := time.Parse(TimeLayout, j.EndTime)
	if err != nil {
		return fmt.Errorf("dataset: bad end_time %q: %w", j.EndTime, err)
	}
	*r = Record{
		From: j.From, To: j.To,
		StartTime: start.UTC(), EndTime: end.UTC(),
		FromIP: j.FromIP, ToIP: j.ToIP,
		DeliveryResult: j.DeliveryResult, DeliveryLatency: j.DeliveryLatency,
		EmailFlag: j.EmailFlag,
	}
	return nil
}
