package dataset

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

func TestByteArenaInternIsolation(t *testing.T) {
	var a byteArena
	src := []byte("hello arena")
	s := a.intern(src)
	src[0] = 'X' // caller clobbers its buffer
	if s != "hello arena" {
		t.Fatalf("interned string aliased the source: %q", s)
	}
	if a.intern(nil) != "" || a.intern([]byte{}) != "" {
		t.Fatal("empty intern should return the empty string")
	}
	// Spanning a chunk boundary must not corrupt earlier strings.
	first := a.intern([]byte("pinned"))
	big := make([]byte, byteArenaChunk)
	for i := range big {
		big[i] = byte('a' + i%26)
	}
	huge := a.intern(big)
	if first != "pinned" {
		t.Fatalf("chunk rollover corrupted earlier string: %q", first)
	}
	if len(huge) != byteArenaChunk || huge[0] != 'a' {
		t.Fatal("oversized intern mangled")
	}
}

func TestSliceArenaSpansAreCapped(t *testing.T) {
	var a Arena[int64]
	x := a.Alloc(3)
	copy(x, []int64{1, 2, 3})
	y := a.Alloc(2)
	copy(y, []int64{9, 9})
	// x has len==cap==3: appending must copy out, not write into y.
	x = append(x, 42)
	if y[0] != 9 || y[1] != 9 {
		t.Fatalf("append through a capped span clobbered its neighbour: %v", y)
	}
	if x[3] != 42 {
		t.Fatal("append lost the new element")
	}
}

// TestRecordStoreAppendCopyIsolation pins AppendCopy's contract: the
// stored record survives the caller clobbering its struct fields and
// slice backings, and nil-vs-empty slice identity is preserved.
func TestRecordStoreAppendCopyIsolation(t *testing.T) {
	var s RecordStore
	rec := Record{
		From:            "a@x.com",
		To:              "b@y.com",
		StartTime:       time.Date(2024, 1, 2, 3, 4, 5, 0, time.UTC),
		EndTime:         time.Date(2024, 1, 2, 3, 4, 6, 0, time.UTC),
		FromIP:          []string{"1.1.1.1"},
		ToIP:            nil,
		DeliveryResult:  []string{"250 ok", "451 try again"},
		DeliveryLatency: []int64{10, 20},
		EmailFlag:       "normal",
	}
	want := rec.Clone()
	s.AppendCopy(&rec)
	rec.To = "clobbered@evil.com"
	rec.FromIP[0] = "6.6.6.6"
	rec.DeliveryResult[0] = "599 clobbered"
	rec.DeliveryLatency[0] = -1

	got := s.View().At(0)
	if got.To != want.To || !reflect.DeepEqual(got.FromIP, want.FromIP) ||
		!reflect.DeepEqual(got.DeliveryResult, want.DeliveryResult) ||
		!reflect.DeepEqual(got.DeliveryLatency, want.DeliveryLatency) {
		t.Fatalf("stored record aliased caller slices: got %+v want %+v", got, want)
	}

	// nil stays nil, non-nil empty stays non-nil empty.
	s.AppendCopy(&Record{FromIP: []string{}, DeliveryLatency: []int64{}})
	e := s.View().At(1)
	if e.ToIP != nil || e.DeliveryResult != nil {
		t.Fatal("nil slices must stay nil")
	}
	if e.FromIP == nil || len(e.FromIP) != 0 || e.DeliveryLatency == nil || len(e.DeliveryLatency) != 0 {
		t.Fatal("empty slices must stay non-nil empty")
	}
}

// TestRecordStoreAppendCopyNeighbours: consecutive appends draw from
// the same arena chunks; writing through one record's slices must never
// have been possible to begin with (spans are full-cap), and the spans
// must hold distinct data.
func TestRecordStoreAppendCopyNeighbours(t *testing.T) {
	var s RecordStore
	const n = 10 * slabSize / 8 // force several slab and chunk rollovers
	for i := 0; i < n; i++ {
		rec := Record{
			To:              fmt.Sprintf("u%d@d%d.com", i, i%7),
			DeliveryResult:  []string{fmt.Sprintf("451 defer %d", i), fmt.Sprintf("250 ok %d", i)},
			DeliveryLatency: []int64{int64(i), int64(2 * i)},
		}
		s.AppendCopy(&rec)
	}
	v := s.View()
	for i := 0; i < n; i++ {
		r := v.At(i)
		if r.DeliveryResult[0] != fmt.Sprintf("451 defer %d", i) ||
			r.DeliveryLatency[1] != int64(2*i) {
			t.Fatalf("record %d holds neighbour data: %+v", i, r)
		}
	}
}
