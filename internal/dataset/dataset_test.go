package dataset

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleRecord() Record {
	return Record{
		From:      "alice@a.com",
		To:        "bob@b.com",
		StartTime: time.Date(2022, 6, 14, 16, 30, 35, 0, time.UTC),
		EndTime:   time.Date(2022, 6, 14, 16, 45, 19, 0, time.UTC),
		FromIP:    []string{"5.0.0.1", "5.0.1.1"},
		ToIP:      []string{"20.0.0.1", "20.0.0.1"},
		DeliveryResult: []string{
			"550 Mail rejected",
			"250 OK",
		},
		DeliveryLatency: []int64{54854, 28320},
		EmailFlag:       "Spam",
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := sampleRecord()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	// The wire format must match Figure 3's field names.
	for _, field := range []string{`"from"`, `"to"`, `"start_time"`, `"end_time"`,
		`"from_ip"`, `"to_ip"`, `"delivery_result"`, `"delivery_latency"`, `"email_flag"`} {
		if !bytes.Contains(b, []byte(field)) {
			t.Errorf("marshaled record missing %s: %s", field, b)
		}
	}
	if !bytes.Contains(b, []byte(`"2022-06-14 16:30:35"`)) {
		t.Errorf("start_time format wrong: %s", b)
	}
	var got Record
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.From != r.From || !got.StartTime.Equal(r.StartTime) ||
		len(got.DeliveryResult) != 2 || got.DeliveryLatency[0] != 54854 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestUnmarshalBadTime(t *testing.T) {
	var r Record
	err := json.Unmarshal([]byte(`{"start_time":"bogus","end_time":"2022-06-14 00:00:00"}`), &r)
	if err == nil {
		t.Error("bad start_time should fail")
	}
}

func TestBounceDegree(t *testing.T) {
	cases := []struct {
		results []string
		want    Degree
	}{
		{[]string{"250 OK"}, NonBounced},
		{[]string{"450 4.7.1 Greylisted", "250 OK"}, SoftBounced},
		{[]string{"550 no user", "550 no user", "550 no user"}, HardBounced},
		{[]string{"450 retry", "421 timeout"}, HardBounced},
		{nil, HardBounced},
	}
	for _, c := range cases {
		r := Record{DeliveryResult: c.results}
		if got := r.BounceDegree(); got != c.want {
			t.Errorf("BounceDegree(%v) = %v want %v", c.results, got, c.want)
		}
	}
	if NonBounced.String() != "non-bounced" || HardBounced.String() != "hard-bounced" {
		t.Error("Degree.String mismatch")
	}
}

func TestNDRsExcludeSuccess(t *testing.T) {
	r := Record{DeliveryResult: []string{"450 retry", "250 OK"}}
	ndrs := r.NDRs()
	if len(ndrs) != 1 || !strings.HasPrefix(ndrs[0], "450") {
		t.Errorf("NDRs = %v", ndrs)
	}
}

func TestDomainHelpers(t *testing.T) {
	r := sampleRecord()
	if r.ToDomain() != "b.com" || r.FromDomain() != "a.com" {
		t.Errorf("domains: %q %q", r.ToDomain(), r.FromDomain())
	}
	bad := Record{To: "no-at-sign"}
	if bad.ToDomain() != "" {
		t.Errorf("malformed To should yield empty domain")
	}
}

func TestAttemptsAndFinal(t *testing.T) {
	r := sampleRecord()
	if r.Attempts() != 2 || r.FinalResult() != "250 OK" || !r.Succeeded() {
		t.Errorf("attempt helpers: %d %q %v", r.Attempts(), r.FinalResult(), r.Succeeded())
	}
	empty := Record{}
	if empty.Attempts() != 0 || empty.FinalResult() != "" || empty.Succeeded() {
		t.Error("empty record helpers wrong")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.jsonl")
	records := []Record{sampleRecord(), sampleRecord()}
	records[1].To = "carol@c.com"
	records[1].DeliveryResult = []string{"250 OK"}
	if err := WriteFile(path, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].To != "carol@c.com" {
		t.Errorf("file round trip: %+v", got)
	}
}

func TestStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		r := sampleRecord()
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := Stream(&buf, func(r *Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("streamed %d records", n)
	}
}

func TestReadAllSkipsBlankLines(t *testing.T) {
	r := sampleRecord()
	b, _ := json.Marshal(r)
	input := string(b) + "\n\n" + string(b) + "\n"
	got, err := ReadAll(strings.NewReader(input))
	if err != nil || len(got) != 2 {
		t.Errorf("ReadAll: %v, %d records", err, len(got))
	}
	if _, err := ReadAll(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage line should error")
	}
}

func TestInEmailRank(t *testing.T) {
	mk := func(to string) Record { r := sampleRecord(); r.To = to; return r }
	records := []Record{
		mk("a@gmail.com"), mk("b@gmail.com"), mk("c@gmail.com"),
		mk("a@yahoo.com"), mk("b@yahoo.com"),
		mk("a@tiny.org"),
	}
	rank := InEmailRank(records)
	if len(rank) != 3 {
		t.Fatalf("rank entries: %d", len(rank))
	}
	if rank[0].Domain != "gmail.com" || rank[0].Emails != 3 {
		t.Errorf("rank[0] = %+v", rank[0])
	}
	if rank[2].Domain != "tiny.org" {
		t.Errorf("rank[2] = %+v", rank[2])
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	base := time.Date(2022, 6, 14, 0, 0, 0, 0, time.UTC)
	f := func(fromL, toL string, attempts uint8, latSeed int64, spam bool) bool {
		n := int(attempts%5) + 1
		r := Record{
			From:      sanitizeLocal(fromL) + "@a.com",
			To:        sanitizeLocal(toL) + "@b.com",
			StartTime: base.Add(time.Duration(latSeed%1000) * time.Hour),
			EmailFlag: "Normal",
		}
		if spam {
			r.EmailFlag = "Spam"
		}
		r.EndTime = r.StartTime.Add(time.Minute)
		for i := 0; i < n; i++ {
			r.FromIP = append(r.FromIP, "5.0.0.1")
			r.ToIP = append(r.ToIP, "20.0.0.1")
			r.DeliveryResult = append(r.DeliveryResult, "450 4.7.1 retry")
			r.DeliveryLatency = append(r.DeliveryLatency, (latSeed%100000+int64(i))&0x7fffffff)
		}
		b, err := json.Marshal(r)
		if err != nil {
			return false
		}
		var got Record
		if err := json.Unmarshal(b, &got); err != nil {
			return false
		}
		return got.From == r.From && got.To == r.To &&
			got.StartTime.Equal(r.StartTime) && got.EndTime.Equal(r.EndTime) &&
			len(got.DeliveryResult) == n && got.DeliveryLatency[0] == r.DeliveryLatency[0] &&
			got.EmailFlag == r.EmailFlag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitizeLocal(s string) string {
	out := make([]rune, 0, 8)
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			out = append(out, r)
		}
		if len(out) >= 8 {
			break
		}
	}
	if len(out) == 0 {
		return "u"
	}
	return string(out)
}
