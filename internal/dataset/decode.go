package dataset

import (
	"time"
	"unicode/utf16"
	"unicode/utf8"
)

// Decoder decodes Figure-3 JSON lines into Records with a fraction of
// encoding/json's cost: a hand-rolled parser for the fixed schema packs
// every string of a record into one backing blob (≈3 allocations per
// record instead of ~29). Anything the fast path does not recognise —
// unknown keys, exotic escapes, malformed input — falls back to
// Record.UnmarshalJSON, so observable behaviour (including error text)
// is always encoding/json's.
//
// Decode overwrites every field of dst with freshly backed values; the
// scratch buffers are internal, so returned records stay valid across
// calls. A Decoder is not safe for concurrent use; give each goroutine
// its own.
type Decoder struct {
	buf  []byte // string-byte accumulator; becomes one blob per record
	strs []span // spans into buf, one per string-array element
	ints []int64
}

type span struct{ off, end int }

// Shared empty slices: the fast path returns these for present-but-empty
// arrays ("from_ip":[]), preserving UnmarshalJSON's nil-vs-empty
// distinction without an allocation. They have zero capacity, so append
// by a caller copies rather than writes through.
var (
	emptyStrings = make([]string, 0)
	emptyInts    = make([]int64, 0)
)

// Decode parses one JSON object into dst.
func (d *Decoder) Decode(b []byte, dst *Record) error {
	if d.fastDecode(b, dst) {
		return nil
	}
	return dst.UnmarshalJSON(b)
}

// Field states for array members: absent and null both decode to nil
// (as encoding/json does for a fresh struct); present arrays carry the
// index range of their elements.
type arrField struct {
	set    bool
	null   bool
	lo, hi int // element range in Decoder.strs or Decoder.ints
}

func (d *Decoder) fastDecode(b []byte, dst *Record) bool {
	d.buf, d.strs, d.ints = d.buf[:0], d.strs[:0], d.ints[:0]
	p := &jparser{b: b}

	var from, to, flag span
	var haveStart, haveEnd bool
	var start, end time.Time
	var fromIP, toIP, result, latency arrField

	p.space()
	if !p.eat('{') {
		return false
	}
	p.space()
	if !p.eat('}') {
		for {
			p.space()
			key, ok := p.rawString()
			if !ok {
				return false
			}
			p.space()
			if !p.eat(':') {
				return false
			}
			p.space()
			switch string(key) {
			case "from":
				from, ok = d.strField(p)
			case "to":
				to, ok = d.strField(p)
			case "email_flag":
				flag, ok = d.strField(p)
			case "start_time":
				var v []byte
				if v, ok = p.rawString(); ok {
					start, ok = parseTimeBytes(v)
					haveStart = true
				}
			case "end_time":
				var v []byte
				if v, ok = p.rawString(); ok {
					end, ok = parseTimeBytes(v)
					haveEnd = true
				}
			case "from_ip":
				fromIP, ok = d.strArray(p)
			case "to_ip":
				toIP, ok = d.strArray(p)
			case "delivery_result":
				result, ok = d.strArray(p)
			case "delivery_latency":
				latency, ok = d.intArray(p)
			default:
				return false
			}
			if !ok {
				return false
			}
			p.space()
			if p.eat(',') {
				continue
			}
			if p.eat('}') {
				break
			}
			return false
		}
	}
	p.space()
	if p.i != len(p.b) {
		return false
	}
	// UnmarshalJSON rejects records whose timestamps are missing or
	// unparseable; let the fallback produce its exact error.
	if !haveStart || !haveEnd {
		return false
	}

	blob := string(d.buf)
	str := func(sp span) string { return blob[sp.off:sp.end] }
	var arr []string
	if len(d.strs) > 0 {
		arr = make([]string, len(d.strs))
		for i, sp := range d.strs {
			arr[i] = blob[sp.off:sp.end]
		}
	}
	strSeg := func(f arrField) []string {
		switch {
		case !f.set || f.null:
			return nil
		case f.lo == f.hi:
			return emptyStrings
		}
		return arr[f.lo:f.hi:f.hi]
	}
	var lat []int64
	switch {
	case !latency.set || latency.null:
	case len(d.ints) == 0:
		lat = emptyInts
	default:
		lat = make([]int64, len(d.ints))
		copy(lat, d.ints)
	}
	*dst = Record{
		From: str(from), To: str(to),
		StartTime: start, EndTime: end,
		FromIP: strSeg(fromIP), ToIP: strSeg(toIP), DeliveryResult: strSeg(result),
		DeliveryLatency: lat,
		EmailFlag:       str(flag),
	}
	return true
}

// strField parses a string value into the blob, decoding escape
// sequences (json.Marshal HTML-escapes < > & as < etc., so real
// NDR lines hit this constantly). Returns the blob span.
func (d *Decoder) strField(p *jparser) (span, bool) {
	if !p.eat('"') {
		return span{}, false
	}
	off := len(d.buf)
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		switch {
		case c == '"':
			d.buf = append(d.buf, p.b[start:p.i]...)
			p.i++
			return span{off, len(d.buf)}, true
		case c == '\\':
			d.buf = append(d.buf, p.b[start:p.i]...)
			p.i++
			var ok bool
			d.buf, ok = p.escape(d.buf)
			if !ok {
				return span{}, false
			}
			start = p.i
		case c < 0x20:
			return span{}, false
		default:
			p.i++
		}
	}
	return span{}, false
}

// escape decodes one escape sequence (cursor is past the backslash),
// appending its expansion to dst. Matches encoding/json's unquoting,
// including the lone-surrogate → U+FFFD rule; anything else bails to
// the fallback.
func (p *jparser) escape(dst []byte) ([]byte, bool) {
	if p.i >= len(p.b) {
		return dst, false
	}
	c := p.b[p.i]
	p.i++
	switch c {
	case '"', '\\', '/':
		return append(dst, c), true
	case 'b':
		return append(dst, '\b'), true
	case 'f':
		return append(dst, '\f'), true
	case 'n':
		return append(dst, '\n'), true
	case 'r':
		return append(dst, '\r'), true
	case 't':
		return append(dst, '\t'), true
	case 'u':
		r, ok := p.hex4()
		if !ok {
			return dst, false
		}
		if utf16.IsSurrogate(r) {
			if p.i+6 <= len(p.b) && p.b[p.i] == '\\' && p.b[p.i+1] == 'u' {
				save := p.i
				p.i += 2
				if r2, ok2 := p.hex4(); ok2 {
					if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
						return utf8.AppendRune(dst, dec), true
					}
				}
				p.i = save // invalid pair: emit U+FFFD, reprocess the rest
			}
			return utf8.AppendRune(dst, utf8.RuneError), true
		}
		return utf8.AppendRune(dst, r), true
	}
	return dst, false
}

// hex4 reads four hex digits as a rune.
func (p *jparser) hex4() (rune, bool) {
	if p.i+4 > len(p.b) {
		return 0, false
	}
	var r rune
	for _, c := range p.b[p.i : p.i+4] {
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 + rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 + rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 + rune(c-'A'+10)
		default:
			return 0, false
		}
	}
	p.i += 4
	return r, true
}

// strArray parses null or an array of strings into the blob.
func (d *Decoder) strArray(p *jparser) (arrField, bool) {
	if p.null() {
		return arrField{set: true, null: true}, true
	}
	if !p.eat('[') {
		return arrField{}, false
	}
	f := arrField{set: true, lo: len(d.strs)}
	p.space()
	if p.eat(']') {
		f.hi = f.lo
		return f, true
	}
	for {
		p.space()
		sp, ok := d.strField(p)
		if !ok {
			return f, false
		}
		d.strs = append(d.strs, sp)
		p.space()
		if p.eat(',') {
			continue
		}
		if p.eat(']') {
			f.hi = len(d.strs)
			return f, true
		}
		return f, false
	}
}

// intArray parses null or an array of plain integers.
func (d *Decoder) intArray(p *jparser) (arrField, bool) {
	if p.null() {
		return arrField{set: true, null: true}, true
	}
	if !p.eat('[') {
		return arrField{}, false
	}
	f := arrField{set: true}
	p.space()
	if p.eat(']') {
		return f, true
	}
	for {
		p.space()
		v, ok := p.integer()
		if !ok {
			return f, false
		}
		d.ints = append(d.ints, v)
		p.space()
		if p.eat(',') {
			continue
		}
		if p.eat(']') {
			return f, true
		}
		return f, false
	}
}

// jparser is a cursor over one JSON line. Every method reports failure
// via ok=false, which sends the whole line to the encoding/json
// fallback — the fast path never produces its own errors.
type jparser struct {
	b []byte
	i int
}

func (p *jparser) space() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\r', '\n':
			p.i++
		default:
			return
		}
	}
}

func (p *jparser) eat(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// rawString scans a quoted string with no escapes, returning the raw
// bytes between the quotes. Escapes and control characters bail out.
func (p *jparser) rawString() ([]byte, bool) {
	if !p.eat('"') {
		return nil, false
	}
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			s := p.b[start:p.i]
			p.i++
			return s, true
		}
		if c == '\\' || c < 0x20 {
			return nil, false
		}
		p.i++
	}
	return nil, false
}

func (p *jparser) null() bool {
	if p.i+4 <= len(p.b) && string(p.b[p.i:p.i+4]) == "null" {
		p.i += 4
		return true
	}
	return false
}

// integer parses an optionally signed run of digits; anything fancier
// (exponents, fractions, overflow) falls back to encoding/json.
func (p *jparser) integer() (int64, bool) {
	neg := p.eat('-')
	start := p.i
	var v int64
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c < '0' || c > '9' {
			break
		}
		if v > (1<<62)/10 {
			return 0, false
		}
		v = v*10 + int64(c-'0')
		p.i++
	}
	if p.i == start {
		return 0, false
	}
	if neg {
		v = -v
	}
	return v, true
}

// parseTimeBytes parses TimeLayout ("2006-01-02 15:04:05") from raw
// bytes. time.Date normalises out-of-range components (Feb 30 becomes
// Mar 2) where time.Parse errors, so the round-trip check rejects any
// line stdlib would reject and routes it to the fallback.
func parseTimeBytes(s []byte) (time.Time, bool) {
	if len(s) != 19 || s[4] != '-' || s[7] != '-' || s[10] != ' ' || s[13] != ':' || s[16] != ':' {
		return time.Time{}, false
	}
	num := func(i, n int) (int, bool) {
		v := 0
		for _, c := range s[i : i+n] {
			if c < '0' || c > '9' {
				return 0, false
			}
			v = v*10 + int(c-'0')
		}
		return v, true
	}
	y, ok1 := num(0, 4)
	mo, ok2 := num(5, 2)
	dd, ok3 := num(8, 2)
	hh, ok4 := num(11, 2)
	mi, ok5 := num(14, 2)
	ss, ok6 := num(17, 2)
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6) {
		return time.Time{}, false
	}
	t := time.Date(y, time.Month(mo), dd, hh, mi, ss, 0, time.UTC)
	if t.Year() != y || t.Month() != time.Month(mo) || t.Day() != dd ||
		t.Hour() != hh || t.Minute() != mi || t.Second() != ss {
		return time.Time{}, false
	}
	return t, true
}
