package dataset

import (
	"encoding/binary"
	"math/bits"
	"time"
	"unicode/utf16"
	"unicode/utf8"
)

// Decoder decodes Figure-3 JSON lines into Records with a fraction of
// encoding/json's cost: a hand-rolled parser for the fixed schema packs
// every string of a record into one backing blob, scans fields with
// memchr-style vectorized byte searches, and backs the blob and the
// record's slices with arena chunks — amortized well under one heap
// allocation per record (encoding/json: ~29). Anything the fast path
// does not recognise — unknown keys, exotic escapes, malformed input —
// falls back to Record.UnmarshalJSON, so observable behaviour
// (including error text) is always encoding/json's.
//
// Decode overwrites every field of dst with freshly backed values; the
// scratch buffers are internal and the arenas append-only, so returned
// records stay valid across calls. A Decoder is not safe for concurrent
// use; give each goroutine its own.
type Decoder struct {
	buf  []byte // string-byte accumulator; becomes one blob per record
	strs []span // spans into buf, one per string-array element
	ints []int64

	blobs   byteArena     // per-record blobs
	strArrs Arena[string] // from_ip/to_ip/delivery_result backings
	intArrs Arena[int64]  // delivery_latency backings
}

type span struct{ off, end int }

// Shared empty slices: the fast path returns these for present-but-empty
// arrays ("from_ip":[]), preserving UnmarshalJSON's nil-vs-empty
// distinction without an allocation. They have zero capacity, so append
// by a caller copies rather than writes through.
var (
	emptyStrings = make([]string, 0)
	emptyInts    = make([]int64, 0)
)

// Decode parses one JSON object into dst.
func (d *Decoder) Decode(b []byte, dst *Record) error {
	if d.fastDecode(b, dst) {
		return nil
	}
	return dst.UnmarshalJSON(b)
}

// Field states for array members: absent and null both decode to nil
// (as encoding/json does for a fresh struct); present arrays carry the
// index range of their elements.
type arrField struct {
	set    bool
	null   bool
	lo, hi int // element range in Decoder.strs or Decoder.ints
}

func (d *Decoder) fastDecode(b []byte, dst *Record) bool {
	d.buf, d.strs, d.ints = d.buf[:0], d.strs[:0], d.ints[:0]
	p := &jparser{b: b}

	var from, to, flag span
	var haveStart, haveEnd bool
	var start, end time.Time
	var fromIP, toIP, result, latency arrField

	p.space()
	if !p.eat('{') {
		return false
	}
	p.space()
	if !p.eat('}') {
		for {
			p.space()
			key, ok := p.rawString()
			if !ok {
				return false
			}
			p.space()
			if !p.eat(':') {
				return false
			}
			p.space()
			switch string(key) {
			case "from":
				from, ok = d.strField(p)
			case "to":
				to, ok = d.strField(p)
			case "email_flag":
				flag, ok = d.strField(p)
			case "start_time":
				var v []byte
				if v, ok = p.rawString(); ok {
					start, ok = parseTimeBytes(v)
					haveStart = true
				}
			case "end_time":
				var v []byte
				if v, ok = p.rawString(); ok {
					end, ok = parseTimeBytes(v)
					haveEnd = true
				}
			case "from_ip":
				fromIP, ok = d.strArray(p)
			case "to_ip":
				toIP, ok = d.strArray(p)
			case "delivery_result":
				result, ok = d.strArray(p)
			case "delivery_latency":
				latency, ok = d.intArray(p)
			default:
				return false
			}
			if !ok {
				return false
			}
			p.space()
			if p.eat(',') {
				continue
			}
			if p.eat('}') {
				break
			}
			return false
		}
	}
	p.space()
	if p.i != len(p.b) {
		return false
	}
	// UnmarshalJSON rejects records whose timestamps are missing or
	// unparseable; let the fallback produce its exact error.
	if !haveStart || !haveEnd {
		return false
	}

	blob := d.blobs.intern(d.buf)
	str := func(sp span) string { return blob[sp.off:sp.end] }
	var arr []string
	if len(d.strs) > 0 {
		arr = d.strArrs.Alloc(len(d.strs))
		for i, sp := range d.strs {
			arr[i] = blob[sp.off:sp.end]
		}
	}
	strSeg := func(f arrField) []string {
		switch {
		case !f.set || f.null:
			return nil
		case f.lo == f.hi:
			return emptyStrings
		}
		return arr[f.lo:f.hi:f.hi]
	}
	var lat []int64
	switch {
	case !latency.set || latency.null:
	case len(d.ints) == 0:
		lat = emptyInts
	default:
		lat = d.intArrs.Alloc(len(d.ints))
		copy(lat, d.ints)
	}
	*dst = Record{
		From: str(from), To: str(to),
		StartTime: start, EndTime: end,
		FromIP: strSeg(fromIP), ToIP: strSeg(toIP), DeliveryResult: strSeg(result),
		DeliveryLatency: lat,
		EmailFlag:       str(flag),
	}
	return true
}

// strField parses a string value into the blob, decoding escape
// sequences (json.Marshal HTML-escapes < > & as < etc., so real
// NDR lines hit this constantly). Returns the blob span.
//
// Scanning is vectorized: bytes.IndexByte (assembly memchr) locates the
// closing quote and any backslash, and the clean run between escapes is
// control-checked eight bytes at a time and bulk-appended, instead of
// walking byte by byte.
func (d *Decoder) strField(p *jparser) (span, bool) {
	if !p.eat('"') {
		return span{}, false
	}
	off := len(d.buf)
	for {
		rest := p.b[p.i:]
		j, high := scanQuoted(rest)
		if j == len(rest) {
			return span{}, false // unterminated string
		}
		if rest[j] < 0x20 {
			return span{}, false // raw control char: stdlib rejects it
		}
		seg := rest[:j]
		if high && !utf8.Valid(seg) {
			// Invalid UTF-8: stdlib rewrites bad sequences to U+FFFD;
			// let the fallback reproduce that exactly. (A multi-byte
			// sequence never contains '"' or '\\', so validity is
			// decidable per segment.)
			return span{}, false
		}
		d.buf = append(d.buf, seg...)
		if rest[j] == '"' {
			p.i += j + 1
			return span{off, len(d.buf)}, true
		}
		p.i += j + 1 // past the backslash; escape() consumes the rest
		var ok bool
		d.buf, ok = p.escape(d.buf)
		if !ok {
			return span{}, false
		}
	}
}

// scanQuoted scans s for the first structural byte of a quoted JSON
// string — a closing quote, a backslash, or a raw control byte — and
// returns its index (len(s) if none), plus whether any scanned byte is
// non-ASCII. One word-at-a-time pass replaces the two bytes.IndexByte
// calls plus a separate validation sweep the caller would otherwise
// make. Per byte b of each 8-byte word, the SWAR "hasless"/"haszero"
// tricks mark b == '"', b == '\\', and b < 0x20 in parallel: a zero
// byte in x^c sets its high marker bit in (y - 0x01…) & ^y & 0x80…,
// and a byte below 0x20 sets it in (x - 0x20·0x01…) & ^x & 0x80….
// UTF-8 continuation bytes keep their own high bit, so neither trick
// can false-positive on multi-byte sequences; the quote and backslash
// code points never occur inside one. nonASCII may overreport bytes
// that share the final word with the stop byte — callers only use it
// to decide whether to run a full utf8.Valid pass, so the slack is a
// spurious (always-passing) check, never a wrong answer.
func scanQuoted(s []byte) (stop int, nonASCII bool) {
	const (
		ones    = 0x0101010101010101
		highBit = 0x8080808080808080
		quotes  = 0x22 * ones
		slashes = 0x5c * ones
	)
	i := 0
	var hi uint64
	for ; i+8 <= len(s); i += 8 {
		x := binary.LittleEndian.Uint64(s[i:])
		hi |= x
		q := x ^ quotes
		b := x ^ slashes
		m := ((q - ones) & ^q & highBit) |
			((b - ones) & ^b & highBit) |
			((x - 0x20*ones) & ^x & highBit)
		if m != 0 {
			return i + bits.TrailingZeros64(m)/8, hi&highBit != 0
		}
	}
	for ; i < len(s); i++ {
		c := s[i]
		if c == '"' || c == '\\' || c < 0x20 {
			return i, nonASCII || hi&highBit != 0
		}
		if c >= 0x80 {
			nonASCII = true
		}
	}
	return len(s), nonASCII || hi&highBit != 0
}

// escape decodes one escape sequence (cursor is past the backslash),
// appending its expansion to dst. Matches encoding/json's unquoting,
// including the lone-surrogate → U+FFFD rule; anything else bails to
// the fallback.
func (p *jparser) escape(dst []byte) ([]byte, bool) {
	if p.i >= len(p.b) {
		return dst, false
	}
	c := p.b[p.i]
	p.i++
	switch c {
	case '"', '\\', '/':
		return append(dst, c), true
	case 'b':
		return append(dst, '\b'), true
	case 'f':
		return append(dst, '\f'), true
	case 'n':
		return append(dst, '\n'), true
	case 'r':
		return append(dst, '\r'), true
	case 't':
		return append(dst, '\t'), true
	case 'u':
		r, ok := p.hex4()
		if !ok {
			return dst, false
		}
		if utf16.IsSurrogate(r) {
			if p.i+6 <= len(p.b) && p.b[p.i] == '\\' && p.b[p.i+1] == 'u' {
				save := p.i
				p.i += 2
				if r2, ok2 := p.hex4(); ok2 {
					if dec := utf16.DecodeRune(r, r2); dec != utf8.RuneError {
						return utf8.AppendRune(dst, dec), true
					}
				}
				p.i = save // invalid pair: emit U+FFFD, reprocess the rest
			}
			return utf8.AppendRune(dst, utf8.RuneError), true
		}
		return utf8.AppendRune(dst, r), true
	}
	return dst, false
}

// hex4 reads four hex digits as a rune.
func (p *jparser) hex4() (rune, bool) {
	if p.i+4 > len(p.b) {
		return 0, false
	}
	var r rune
	for _, c := range p.b[p.i : p.i+4] {
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 + rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 + rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 + rune(c-'A'+10)
		default:
			return 0, false
		}
	}
	p.i += 4
	return r, true
}

// strArray parses null or an array of strings into the blob.
func (d *Decoder) strArray(p *jparser) (arrField, bool) {
	if p.null() {
		return arrField{set: true, null: true}, true
	}
	if !p.eat('[') {
		return arrField{}, false
	}
	f := arrField{set: true, lo: len(d.strs)}
	p.space()
	if p.eat(']') {
		f.hi = f.lo
		return f, true
	}
	for {
		p.space()
		sp, ok := d.strField(p)
		if !ok {
			return f, false
		}
		d.strs = append(d.strs, sp)
		p.space()
		if p.eat(',') {
			continue
		}
		if p.eat(']') {
			f.hi = len(d.strs)
			return f, true
		}
		return f, false
	}
}

// intArray parses null or an array of plain integers.
func (d *Decoder) intArray(p *jparser) (arrField, bool) {
	if p.null() {
		return arrField{set: true, null: true}, true
	}
	if !p.eat('[') {
		return arrField{}, false
	}
	f := arrField{set: true}
	p.space()
	if p.eat(']') {
		return f, true
	}
	for {
		p.space()
		v, ok := p.integer()
		if !ok {
			return f, false
		}
		d.ints = append(d.ints, v)
		p.space()
		if p.eat(',') {
			continue
		}
		if p.eat(']') {
			return f, true
		}
		return f, false
	}
}

// jparser is a cursor over one JSON line. Every method reports failure
// via ok=false, which sends the whole line to the encoding/json
// fallback — the fast path never produces its own errors.
type jparser struct {
	b []byte
	i int
}

func (p *jparser) space() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\r', '\n':
			p.i++
		default:
			return
		}
	}
}

func (p *jparser) eat(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// rawString scans a quoted string with no escapes, returning the raw
// bytes between the quotes. Escapes and control characters bail out.
// Like strField, it leans on one scanQuoted sweep rather than a byte
// loop.
func (p *jparser) rawString() ([]byte, bool) {
	if !p.eat('"') {
		return nil, false
	}
	rest := p.b[p.i:]
	j, _ := scanQuoted(rest)
	if j == len(rest) || rest[j] != '"' {
		return nil, false
	}
	p.i += j + 1
	return rest[:j], true
}

func (p *jparser) null() bool {
	if p.i+4 <= len(p.b) && string(p.b[p.i:p.i+4]) == "null" {
		p.i += 4
		return true
	}
	return false
}

// integer parses an optionally signed run of digits; anything fancier
// (exponents, fractions, overflow) falls back to encoding/json.
func (p *jparser) integer() (int64, bool) {
	neg := p.eat('-')
	start := p.i
	var v int64
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c < '0' || c > '9' {
			break
		}
		if v > (1<<62)/10 {
			return 0, false
		}
		v = v*10 + int64(c-'0')
		p.i++
	}
	if p.i == start {
		return 0, false
	}
	if neg {
		v = -v
	}
	return v, true
}

// parseTimeBytes parses TimeLayout ("2006-01-02 15:04:05") from raw
// bytes. time.Date normalises out-of-range components (Feb 30 becomes
// Mar 2) where time.Parse errors, so the round-trip check rejects any
// line stdlib would reject and routes it to the fallback.
func parseTimeBytes(s []byte) (time.Time, bool) {
	if len(s) != 19 || s[4] != '-' || s[7] != '-' || s[10] != ' ' || s[13] != ':' || s[16] != ':' {
		return time.Time{}, false
	}
	num := func(i, n int) (int, bool) {
		v := 0
		for _, c := range s[i : i+n] {
			if c < '0' || c > '9' {
				return 0, false
			}
			v = v*10 + int(c-'0')
		}
		return v, true
	}
	y, ok1 := num(0, 4)
	mo, ok2 := num(5, 2)
	dd, ok3 := num(8, 2)
	hh, ok4 := num(11, 2)
	mi, ok5 := num(14, 2)
	ss, ok6 := num(17, 2)
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6) {
		return time.Time{}, false
	}
	// Range-check arithmetically instead of round-tripping through the
	// time.Time accessors (six absDate computations per timestamp):
	// these are exactly the bounds time.Parse enforces, including the
	// Gregorian leap rule for February, so the fallback agrees on every
	// input. num() already guarantees non-negative values.
	if mo < 1 || mo > 12 || hh > 23 || mi > 59 || ss > 59 {
		return time.Time{}, false
	}
	maxDay := int(daysInMonth[mo])
	if mo == 2 && y%4 == 0 && (y%100 != 0 || y%400 == 0) {
		maxDay = 29
	}
	if dd < 1 || dd > maxDay {
		return time.Time{}, false
	}
	return time.Date(y, time.Month(mo), dd, hh, mi, ss, 0, time.UTC), true
}

var daysInMonth = [13]int8{0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}
