package dataset

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
)

// LineError reports a failure at a specific 1-based line of a JSONL
// stream. Decode failures carry the offending line; read failures
// (After=true) carry the last line that was read successfully.
type LineError struct {
	Line  int
	After bool
	Err   error
}

func (e *LineError) Error() string {
	if e.After {
		return fmt.Sprintf("dataset: after line %d: %v", e.Line, e.Err)
	}
	return fmt.Sprintf("dataset: line %d: %v", e.Line, e.Err)
}

func (e *LineError) Unwrap() error { return e.Err }

// ScanLines streams r line by line with the package's buffer limits,
// calling fn with each non-empty line and its 1-based number (blank
// lines are skipped but still numbered). fn's byte slice is only valid
// during the call. A non-nil error from fn stops the scan and is
// returned as-is; read errors are wrapped in a *LineError.
func ScanLines(r io.Reader, fn func(line []byte, num int) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), maxLineBytes)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := fn(line, n); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return &LineError{Line: n, After: true, Err: err}
	}
	return nil
}

// Block sizing for ParallelReader. The scanner goroutine only moves
// blocks: it reads parallelBlock bytes, cuts at the last newline, and
// hands the whole block to a worker — line splitting, numbering inside
// the block, and decoding all happen on the worker, so the serial
// section per record is a few instructions of memchr instead of a
// per-line copy through bufio.Scanner. Block boundaries depend only on
// the input bytes, never on worker count or timing, which keeps the
// record sequence invariant across worker counts. maxLineBytes matches
// the serial ReaderSource's scanner limit, so both paths reject the
// same inputs.
const (
	parallelBlock = 512 << 10
	maxLineBytes  = 1 << 24
)

// chunk is one block of raw lines plus the records decoded from them.
// Chunks are pooled; done is closed by the worker that decoded it.
type chunk struct {
	buf   []byte
	first int // 1-based global line number of the block's first line
	recs  []Record
	nums  []int // global line number per decoded record
	err   error // *LineError on the first bad line, nil otherwise
	done  chan struct{}
}

var chunkPool = sync.Pool{New: func() any { return new(chunk) }}

var nl = []byte{'\n'}

// ParallelReader is a RecordSource that decodes a JSONL stream on a
// worker pool while preserving input order: a scanner goroutine slices
// the stream into line-aligned blocks, workers split and decode blocks
// concurrently, and Next yields records chunk by chunk in stream order
// — the same order-merge discipline as delivery.ParallelRun, so the
// sequence is byte-identical for any worker count.
//
// Next/NextBatch/Err/Line must be called from one goroutine. Close
// releases the pipeline (safe if the stream was only partially
// consumed) and must not race with Next.
type ParallelReader struct {
	jobs   chan *chunk
	order  chan *chunk
	cancel chan struct{}
	once   sync.Once
	block  int

	cur     *chunk
	curIdx  int
	line    int // number of the last line yielded or faulted
	err     error
	readErr *LineError // set by the scanner goroutine before closing order
}

// NewParallelReader starts decoding r with the given worker count
// (<=0 means GOMAXPROCS).
func NewParallelReader(r io.Reader, workers int) *ParallelReader {
	return newParallelReaderSize(r, workers, parallelBlock)
}

// newParallelReaderSize is NewParallelReader with an explicit block
// size — the test hook that makes multi-block behaviour reachable with
// small corpora.
func newParallelReaderSize(r io.Reader, workers, block int) *ParallelReader {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if block <= 0 {
		block = parallelBlock
	}
	p := &ParallelReader{
		jobs:   make(chan *chunk, workers),
		order:  make(chan *chunk, 2*workers+2),
		cancel: make(chan struct{}),
		block:  block,
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	go p.scan(r)
	return p
}

func (p *ParallelReader) worker() {
	var d Decoder
	for c := range p.jobs {
		decodeChunk(&d, c)
		close(c.done)
	}
}

// decodeChunk splits a block into lines (memchr scan, trailing-\r
// strip, blank lines numbered but skipped — bufio.ScanLines semantics)
// and decodes each into the chunk's record buffer.
func decodeChunk(d *Decoder, c *chunk) {
	c.recs, c.nums = c.recs[:0], c.nums[:0]
	num := c.first - 1
	buf := c.buf
	for off := 0; off < len(buf); {
		var line []byte
		if j := bytes.IndexByte(buf[off:], '\n'); j >= 0 {
			line = buf[off : off+j]
			off += j + 1
		} else {
			line = buf[off:] // partial final line (EOF or read error tail)
			off = len(buf)
		}
		num++
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(line) == 0 {
			continue
		}
		if len(c.recs) < cap(c.recs) {
			c.recs = c.recs[:len(c.recs)+1]
		} else {
			c.recs = append(c.recs, Record{})
		}
		if err := d.Decode(line, &c.recs[len(c.recs)-1]); err != nil {
			c.recs = c.recs[:len(c.recs)-1]
			c.err = &LineError{Line: num, Err: err}
			return
		}
		c.nums = append(c.nums, num)
	}
}

// countLines returns how many scanner lines buf holds: one per newline,
// plus a final unterminated line if the buffer does not end in one.
func countLines(buf []byte) int {
	n := bytes.Count(buf, nl)
	if len(buf) > 0 && buf[len(buf)-1] != '\n' {
		n++
	}
	return n
}

func (p *ParallelReader) scan(r io.Reader) {
	defer close(p.jobs)
	defer close(p.order)
	line := 0        // global lines handed to workers so far
	var carry []byte // head of a line cut by the previous block
	for {
		c := newChunk()
		c.buf = append(c.buf, carry...)
		carry = carry[:0]

		// Fill at least one more block's worth, growing past the target
		// only while a single line spans blocks.
		var readErr error
		for {
			target := len(c.buf) + p.block
			if cap(c.buf) < target {
				grown := make([]byte, len(c.buf), target)
				copy(grown, c.buf)
				c.buf = grown
			}
			for len(c.buf) < target && readErr == nil {
				var n int
				n, readErr = r.Read(c.buf[len(c.buf):target])
				c.buf = c.buf[:len(c.buf)+n]
			}
			if readErr != nil || bytes.IndexByte(c.buf[target-p.block:], '\n') >= 0 {
				break
			}
			// No newline in the whole buffer: the serial scanner would
			// give up once its max token size fills without one.
			if len(c.buf) >= maxLineBytes {
				p.readErr = &LineError{Line: line, After: true, Err: bufio.ErrTooLong}
				return
			}
		}

		// Cut at the last newline mid-stream; at end of stream the
		// partial final line rides along (the serial scanner yields it
		// too — a torn tail then surfaces as a decode error at its true
		// line, not a silent drop).
		cut := len(c.buf)
		if readErr == nil {
			cut = bytes.LastIndexByte(c.buf, '\n') + 1 // >0: loop above saw one
			carry = append(carry[:0], c.buf[cut:]...)
			c.buf = c.buf[:cut]
		}
		// The only line that can exceed the serial scanner's limit with
		// newlines present is the first (carry-completing) one.
		if cut > 0 {
			if fn := bytes.IndexByte(c.buf, '\n'); fn >= maxLineBytes || (fn < 0 && len(c.buf) > maxLineBytes) {
				p.readErr = &LineError{Line: line, After: true, Err: bufio.ErrTooLong}
				return
			}
		}

		if len(c.buf) > 0 {
			c.first = line + 1
			line += countLines(c.buf)
			if !p.emit(c) {
				return // cancelled
			}
		}
		if readErr != nil {
			if readErr != io.EOF {
				p.readErr = &LineError{Line: line, After: true, Err: readErr}
			}
			return
		}
	}
}

// emit hands a chunk to the workers and to the in-order consumer; both
// sends watch cancel so Close never strands the scanner.
func (p *ParallelReader) emit(c *chunk) bool {
	c.done = make(chan struct{})
	select {
	case p.jobs <- c:
	case <-p.cancel:
		return false
	}
	select {
	case p.order <- c:
	case <-p.cancel:
		return false
	}
	return true
}

func newChunk() *chunk {
	c := chunkPool.Get().(*chunk)
	c.buf, c.err, c.done, c.first = c.buf[:0], nil, nil, 0
	return c
}

// Next returns the next record in input order. The pointer is valid
// until the following Next call.
func (p *ParallelReader) Next() (*Record, bool) {
	if p.err != nil {
		return nil, false
	}
	for {
		if p.cur != nil && p.curIdx < len(p.cur.recs) {
			rec := &p.cur.recs[p.curIdx]
			p.line = p.cur.nums[p.curIdx]
			p.curIdx++
			return rec, true
		}
		if !p.advance() {
			return nil, false
		}
	}
}

// NextBatch returns every remaining decoded record of the current
// chunk — at least one when ok. The slice (and the records' backing
// memory) is valid only until the next Next/NextBatch call; consumers
// that retain records must copy them out first. Draining by NextBatch
// yields exactly the Next sequence, chunked.
func (p *ParallelReader) NextBatch() ([]Record, bool) {
	if p.err != nil {
		return nil, false
	}
	for {
		if p.cur != nil && p.curIdx < len(p.cur.recs) {
			recs := p.cur.recs[p.curIdx:len(p.cur.recs):len(p.cur.recs)]
			p.line = p.cur.nums[len(p.cur.recs)-1]
			p.curIdx = len(p.cur.recs)
			return recs, true
		}
		if !p.advance() {
			return nil, false
		}
	}
}

// advance retires the current chunk (surfacing its decode error, if
// any) and pulls the next one in stream order. False means the stream
// is over — p.err has the verdict.
func (p *ParallelReader) advance() bool {
	if p.cur != nil {
		if p.cur.err != nil {
			p.err = p.cur.err
			p.line = p.cur.err.(*LineError).Line
			p.release()
			return false
		}
		p.release()
	}
	c, ok := <-p.order
	if !ok {
		if p.err == nil && p.readErr != nil {
			p.err = p.readErr
			// Read failures carry the last line scanned; report it so
			// Line() does not sit a chunk behind the true position.
			p.line = p.readErr.Line
		}
		return false
	}
	<-c.done
	p.cur, p.curIdx = c, 0
	return true
}

// release returns the current chunk to the pool. Safe only after the
// chunk's done channel closed (its worker is finished with it).
func (p *ParallelReader) release() {
	// Drop oversize buffers instead of pooling them forever.
	if p.cur != nil && cap(p.cur.buf) <= 4*parallelBlock {
		chunkPool.Put(p.cur)
	}
	p.cur = nil
}

// Err returns the first error (always a *LineError) after Next returned
// false, or nil at clean EOF or after a Close-triggered stop.
func (p *ParallelReader) Err() error { return p.err }

// Line returns the 1-based number of the last line consumed.
func (p *ParallelReader) Line() int { return p.line }

// Close stops the pipeline and waits for its goroutines to wind down.
// Do not call Next concurrently with or after Close.
func (p *ParallelReader) Close() {
	p.once.Do(func() { close(p.cancel) })
	if p.cur != nil {
		p.release()
	}
	for c := range p.order {
		<-c.done
	}
}

// ParallelFileSource is an OpenParallel handle: a ParallelReader over an
// (optionally gzipped) dataset file.
type ParallelFileSource struct {
	*ParallelReader
	f io.Closer
}

// OpenParallel opens path like Open but decodes it with a
// ParallelReader. workers<=0 means GOMAXPROCS.
func OpenParallel(path string, workers int) (*ParallelFileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	rd, err := NewDecodingReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &ParallelFileSource{ParallelReader: NewParallelReader(rd, workers), f: f}, nil
}

// Close tears down the decode pipeline and closes the file.
func (s *ParallelFileSource) Close() error {
	s.ParallelReader.Close()
	return s.f.Close()
}
