package dataset

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
)

// LineError reports a failure at a specific 1-based line of a JSONL
// stream. Decode failures carry the offending line; read failures
// (After=true) carry the last line that was read successfully.
type LineError struct {
	Line  int
	After bool
	Err   error
}

func (e *LineError) Error() string {
	if e.After {
		return fmt.Sprintf("dataset: after line %d: %v", e.Line, e.Err)
	}
	return fmt.Sprintf("dataset: line %d: %v", e.Line, e.Err)
}

func (e *LineError) Unwrap() error { return e.Err }

// ScanLines streams r line by line with the package's buffer limits,
// calling fn with each non-empty line and its 1-based number (blank
// lines are skipped but still numbered). fn's byte slice is only valid
// during the call. A non-nil error from fn stops the scan and is
// returned as-is; read errors are wrapped in a *LineError.
func ScanLines(r io.Reader, fn func(line []byte, num int) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := fn(line, n); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return &LineError{Line: n, After: true, Err: err}
	}
	return nil
}

// Chunking bounds for ParallelReader: a chunk closes at either limit,
// so chunk boundaries depend only on the input bytes — never on worker
// count or timing — which is what makes the record sequence invariant
// across worker counts.
const (
	chunkLines = 256
	chunkBytes = 1 << 18
)

// lineSpan locates one line inside a chunk buffer.
type lineSpan struct {
	off, end int
	num      int // 1-based global line number
}

// chunk is a batch of raw lines plus the records decoded from them.
// Chunks are pooled; done is closed by the worker that decoded it.
type chunk struct {
	buf   []byte
	spans []lineSpan
	recs  []Record
	err   error // *LineError on the first bad line, nil otherwise
	done  chan struct{}
}

var chunkPool = sync.Pool{New: func() any { return new(chunk) }}

// ParallelReader is a RecordSource that decodes a JSONL stream on a
// worker pool while preserving input order: a scanner goroutine slices
// the stream into line chunks, workers decode chunks concurrently, and
// Next yields records chunk by chunk in stream order — the same
// order-merge discipline as delivery.ParallelRun, so the sequence is
// byte-identical for any worker count.
//
// Next/Err/Line must be called from one goroutine. Close releases the
// pipeline (safe if the stream was only partially consumed) and must
// not race with Next.
type ParallelReader struct {
	jobs   chan *chunk
	order  chan *chunk
	cancel chan struct{}
	once   sync.Once

	cur     *chunk
	curIdx  int
	line    int // number of the last line yielded or faulted
	err     error
	readErr *LineError // set by the scanner goroutine before closing order
}

// NewParallelReader starts decoding r with the given worker count
// (<=0 means GOMAXPROCS).
func NewParallelReader(r io.Reader, workers int) *ParallelReader {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ParallelReader{
		jobs:   make(chan *chunk, workers),
		order:  make(chan *chunk, 2*workers+2),
		cancel: make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	go p.scan(r)
	return p
}

func (p *ParallelReader) worker() {
	var d Decoder
	for c := range p.jobs {
		if cap(c.recs) < len(c.spans) {
			c.recs = make([]Record, len(c.spans))
		}
		c.recs = c.recs[:len(c.spans)]
		for i, sp := range c.spans {
			if err := d.Decode(c.buf[sp.off:sp.end], &c.recs[i]); err != nil {
				c.err = &LineError{Line: sp.num, Err: err}
				c.recs = c.recs[:i]
				break
			}
		}
		close(c.done)
	}
}

func (p *ParallelReader) scan(r io.Reader) {
	defer close(p.jobs)
	defer close(p.order)
	c := newChunk()
	err := ScanLines(r, func(line []byte, num int) error {
		off := len(c.buf)
		c.buf = append(c.buf, line...)
		c.spans = append(c.spans, lineSpan{off, len(c.buf), num})
		if len(c.spans) >= chunkLines || len(c.buf) >= chunkBytes {
			if !p.emit(c) {
				return io.EOF // cancelled; sentinel never surfaces
			}
			c = newChunk()
		}
		return nil
	})
	le, readFailed := err.(*LineError)
	if readFailed {
		p.readErr = le
	}
	// Emit the final partial chunk on clean EOF — and on a read error
	// too: the lines scanned before the stream died are complete, and
	// the serial ReaderSource yields them, so dropping them here would
	// silently lose up to a chunk of records and skew the reported line
	// by the same amount. A torn final line rides along and surfaces as
	// a decode error at its true global number, exactly like the serial
	// path; only cancellation (the io.EOF sentinel) skips the emit.
	if len(c.spans) > 0 && (err == nil || readFailed) {
		p.emit(c)
	}
}

// emit hands a chunk to the workers and to the in-order consumer; both
// sends watch cancel so Close never strands the scanner.
func (p *ParallelReader) emit(c *chunk) bool {
	c.done = make(chan struct{})
	select {
	case p.jobs <- c:
	case <-p.cancel:
		return false
	}
	select {
	case p.order <- c:
	case <-p.cancel:
		return false
	}
	return true
}

func newChunk() *chunk {
	c := chunkPool.Get().(*chunk)
	c.buf, c.spans, c.err, c.done = c.buf[:0], c.spans[:0], nil, nil
	return c
}

// Next returns the next record in input order. The pointer is valid
// until the following Next call.
func (p *ParallelReader) Next() (*Record, bool) {
	if p.err != nil {
		return nil, false
	}
	for {
		if p.cur != nil && p.curIdx < len(p.cur.recs) {
			rec := &p.cur.recs[p.curIdx]
			p.line = p.cur.spans[p.curIdx].num
			p.curIdx++
			return rec, true
		}
		if p.cur != nil {
			if p.cur.err != nil {
				p.err = p.cur.err
				p.line = p.cur.err.(*LineError).Line
				p.release()
				return nil, false
			}
			p.release()
		}
		c, ok := <-p.order
		if !ok {
			if p.err == nil && p.readErr != nil {
				p.err = p.readErr
				// Read failures carry the last line scanned; report it so
				// Line() does not sit a chunk behind the true position.
				p.line = p.readErr.Line
			}
			return nil, false
		}
		<-c.done
		p.cur, p.curIdx = c, 0
	}
}

// release returns the current chunk to the pool. Safe only after the
// chunk's done channel closed (its worker is finished with it).
func (p *ParallelReader) release() {
	// Drop oversize buffers instead of pooling them forever.
	if p.cur != nil && cap(p.cur.buf) <= 4*chunkBytes {
		chunkPool.Put(p.cur)
	}
	p.cur = nil
}

// Err returns the first error (always a *LineError) after Next returned
// false, or nil at clean EOF or after a Close-triggered stop.
func (p *ParallelReader) Err() error { return p.err }

// Line returns the 1-based number of the last line consumed.
func (p *ParallelReader) Line() int { return p.line }

// Close stops the pipeline and waits for its goroutines to wind down.
// Do not call Next concurrently with or after Close.
func (p *ParallelReader) Close() {
	p.once.Do(func() { close(p.cancel) })
	if p.cur != nil {
		p.release()
	}
	for c := range p.order {
		<-c.done
	}
}

// ParallelFileSource is an OpenParallel handle: a ParallelReader over an
// (optionally gzipped) dataset file.
type ParallelFileSource struct {
	*ParallelReader
	f io.Closer
}

// OpenParallel opens path like Open but decodes it with a
// ParallelReader. workers<=0 means GOMAXPROCS.
func OpenParallel(path string, workers int) (*ParallelFileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	rd, err := NewDecodingReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &ParallelFileSource{ParallelReader: NewParallelReader(rd, workers), f: f}, nil
}

// Close tears down the decode pipeline and closes the file.
func (s *ParallelFileSource) Close() error {
	s.ParallelReader.Close()
	return s.f.Close()
}
