package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Writer streams records as JSON Lines.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewWriter wraps w for JSONL output.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriterSize(w, 1<<20)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record line.
func (w *Writer) Write(r *Record) error {
	w.n++
	return w.enc.Encode(r)
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// WriteFile writes all records to path as JSONL.
func WriteFile(path string, records []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := NewWriter(f)
	for i := range records {
		if err := w.Write(&records[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadAll parses every JSONL record from r.
func ReadAll(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// ReadFile parses a JSONL dataset file, transparently decoding gzip
// input (sniffed by magic bytes, not extension).
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := NewDecodingReader(f)
	if err != nil {
		return nil, err
	}
	return ReadAll(r)
}

// Stream calls fn for each record in r without retaining them,
// supporting datasets larger than memory.
func Stream(r io.Reader, fn func(*Record) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("dataset: line %d: %w", line, err)
		}
		if err := fn(&rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

// RankEntry is one InEmailRank row.
type RankEntry struct {
	Domain string
	Emails int
}

// InEmailRank builds the receiver-domain popularity list the paper uses
// throughout ("we build a popularity ranking list based on the number
// of incoming emails for receiver domains").
func InEmailRank(records []Record) []RankEntry {
	counts := map[string]int{}
	for i := range records {
		counts[records[i].ToDomain()]++
	}
	return RankFromCounts(counts)
}

// RankFromCounts builds the popularity list from per-domain email
// counts accumulated incrementally (e.g. while streaming records).
func RankFromCounts(counts map[string]int) []RankEntry {
	out := make([]RankEntry, 0, len(counts))
	for d, n := range counts {
		out = append(out, RankEntry{Domain: d, Emails: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Emails != out[j].Emails {
			return out[i].Emails > out[j].Emails
		}
		return out[i].Domain < out[j].Domain
	})
	return out
}
