package dataset

import (
	"encoding/json"
	"testing"
)

func BenchmarkMarshal(b *testing.B) {
	r := sampleRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	raw, _ := json.Marshal(sampleRecord())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r Record
		if err := json.Unmarshal(raw, &r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInEmailRank(b *testing.B) {
	records := make([]Record, 5000)
	for i := range records {
		r := sampleRecord()
		r.To = "u@" + string(rune('a'+i%26)) + ".com"
		records[i] = r
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InEmailRank(records)
	}
}
