package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// RecordSink receives records one at a time. Writer satisfies it, so
// anything that produces records can stream straight to JSONL.
type RecordSink interface {
	Write(r *Record) error
}

// RecordSource yields records one at a time. Next returns false once
// the source is exhausted. The returned pointer is only valid until
// the next call to Next; callers that retain records must copy them.
type RecordSource interface {
	Next() (*Record, bool)
}

var _ RecordSink = (*Writer)(nil)
var _ RecordSource = (*SliceSource)(nil)
var _ RecordSource = (*ReaderSource)(nil)
var _ RecordSink = (*Pipe)(nil)
var _ RecordSource = (*Pipe)(nil)

// SliceSource adapts an in-memory slice to RecordSource.
type SliceSource struct {
	records []Record
	i       int
}

// NewSliceSource returns a source that yields records in order without
// copying them.
func NewSliceSource(records []Record) *SliceSource {
	return &SliceSource{records: records}
}

func (s *SliceSource) Next() (*Record, bool) {
	if s.i >= len(s.records) {
		return nil, false
	}
	r := &s.records[s.i]
	s.i++
	return r, true
}

// Collect drains src into a slice.
func Collect(src RecordSource) []Record {
	var out []Record
	for {
		r, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, *r)
	}
}

// Pipe is a bounded channel connecting a record producer to a
// consumer: the producer calls Write (blocking once the buffer fills,
// which backpressures generation to analysis speed) and Close; the
// consumer calls Next until it returns false.
type Pipe struct {
	ch  chan Record
	cur Record
}

// NewPipe creates a pipe buffering up to buf records.
func NewPipe(buf int) *Pipe {
	if buf < 1 {
		buf = 1
	}
	return &Pipe{ch: make(chan Record, buf)}
}

// Write copies r into the pipe, blocking while the buffer is full.
// Writing after Close panics.
func (p *Pipe) Write(r *Record) error {
	p.ch <- *r
	return nil
}

// Close signals the consumer that no more records follow.
func (p *Pipe) Close() {
	close(p.ch)
}

func (p *Pipe) Next() (*Record, bool) {
	rec, ok := <-p.ch
	if !ok {
		return nil, false
	}
	p.cur = rec
	return &p.cur, true
}

// ReaderSource streams JSONL records from r without materializing the
// dataset. Check Err after Next returns false.
type ReaderSource struct {
	sc   *bufio.Scanner
	cur  Record
	line int
	err  error
}

// NewReaderSource wraps a JSONL stream.
func NewReaderSource(r io.Reader) *ReaderSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return &ReaderSource{sc: sc}
}

func (s *ReaderSource) Next() (*Record, bool) {
	if s.err != nil {
		return nil, false
	}
	for s.sc.Scan() {
		s.line++
		if len(s.sc.Bytes()) == 0 {
			continue
		}
		s.cur = Record{}
		if err := json.Unmarshal(s.sc.Bytes(), &s.cur); err != nil {
			s.err = fmt.Errorf("dataset: line %d: %w", s.line, err)
			return nil, false
		}
		return &s.cur, true
	}
	s.err = s.sc.Err()
	return nil, false
}

// Err reports the first decode or read error encountered.
func (s *ReaderSource) Err() error { return s.err }
