package dataset

import (
	"bufio"
	"compress/gzip"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// RecordSink receives records one at a time. Writer satisfies it, so
// anything that produces records can stream straight to JSONL.
type RecordSink interface {
	Write(r *Record) error
}

// RecordSource yields records one at a time. Next returns false once
// the source is exhausted. The returned pointer is only valid until
// the next call to Next; callers that retain records must copy them.
type RecordSource interface {
	Next() (*Record, bool)
}

var _ RecordSink = (*Writer)(nil)
var _ RecordSource = (*SliceSource)(nil)
var _ RecordSource = (*ReaderSource)(nil)
var _ RecordSource = (*FileSource)(nil)
var _ RecordSource = (*ContextSource)(nil)
var _ RecordSink = (*Pipe)(nil)
var _ RecordSource = (*Pipe)(nil)

// SliceSource adapts an in-memory slice to RecordSource.
type SliceSource struct {
	records []Record
	i       int
}

// NewSliceSource returns a source that yields records in order without
// copying them.
func NewSliceSource(records []Record) *SliceSource {
	return &SliceSource{records: records}
}

func (s *SliceSource) Next() (*Record, bool) {
	if s.i >= len(s.records) {
		return nil, false
	}
	r := &s.records[s.i]
	s.i++
	return r, true
}

// Collect drains src into a slice.
func Collect(src RecordSource) []Record {
	var out []Record
	for {
		r, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, *r)
	}
}

// ErrClosedPipe is returned by Pipe.Write after the pipe has been
// closed from either side: by the consumer via CloseRead, or by the
// producer via Close (a late concurrent Write races the close and gets
// a clean error instead of a panic or a silently lost record).
var ErrClosedPipe = errors.New("dataset: write on closed pipe")

// Pipe is a bounded ring buffer connecting record producers to a
// consumer: producers call Write (blocking once the buffer fills,
// which backpressures generation to analysis speed) and Close; the
// consumer calls Next until it returns false. A consumer that stops
// early calls CloseRead, which unblocks pending and future writers
// with ErrClosedPipe instead of leaving them hung — the abort path
// HTTP ingestion and Ctrl-C cancellation rely on.
//
// Shutdown ordering is race-safe in both directions: a Write blocked
// on a full buffer when CloseRead lands wakes with ErrClosedPipe (the
// record is not enqueued), and a Write racing Close fails the same
// way rather than panicking on a closed channel. After Close the
// consumer still drains every record accepted before the close.
type Pipe struct {
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond

	buf     []Record
	head    int // next record to read
	n       int // records buffered
	closed  bool
	aborted bool

	cur Record
}

// NewPipe creates a pipe buffering up to buf records.
func NewPipe(buf int) *Pipe {
	if buf < 1 {
		buf = 1
	}
	p := &Pipe{buf: make([]Record, buf)}
	p.notFull.L = &p.mu
	p.notEmpty.L = &p.mu
	return p
}

// Write copies r into the pipe, blocking while the buffer is full. It
// returns ErrClosedPipe once the pipe is closed from either side; the
// record is then not enqueued.
func (p *Pipe) Write(r *Record) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.n == len(p.buf) && !p.closed && !p.aborted {
		p.notFull.Wait()
	}
	if p.closed || p.aborted {
		return ErrClosedPipe
	}
	p.buf[(p.head+p.n)%len(p.buf)] = *r
	p.n++
	p.notEmpty.Signal()
	return nil
}

// WriteBatch copies recs into the pipe in order, blocking while the
// buffer is full, and reports how many records were enqueued. It stops
// early with ErrClosedPipe once the pipe closes from either side;
// records [n:] are then not enqueued. Equivalent to calling Write per
// record, but each lock acquisition moves as many records as fit.
func (p *Pipe) WriteBatch(recs []Record) (n int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for n < len(recs) {
		for p.n == len(p.buf) && !p.closed && !p.aborted {
			p.notFull.Wait()
		}
		if p.closed || p.aborted {
			return n, ErrClosedPipe
		}
		// Copy into the free region, at most two segments (ring wrap).
		free := len(p.buf) - p.n
		want := len(recs) - n
		if want > free {
			want = free
		}
		w := (p.head + p.n) % len(p.buf)
		c := copy(p.buf[w:], recs[n:n+want])
		if c < want {
			copy(p.buf, recs[n+c:n+want])
		}
		p.n += want
		n += want
		p.notEmpty.Broadcast()
	}
	return n, nil
}

// Close signals the consumer that no more records follow; buffered
// records remain readable. Subsequent or concurrently blocked writes
// fail with ErrClosedPipe. Safe to call more than once.
func (p *Pipe) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.notFull.Broadcast()
	p.notEmpty.Broadcast()
}

// CloseRead aborts the stream from the consumer side: buffered records
// are discarded, Next returns false, and blocked or future Write calls
// fail with ErrClosedPipe. Safe to call any number of times and
// concurrently with writers.
func (p *Pipe) CloseRead() {
	p.mu.Lock()
	p.aborted = true
	p.n = 0
	p.mu.Unlock()
	p.notFull.Broadcast()
	p.notEmpty.Broadcast()
}

// Len reports the number of records currently buffered.
func (p *Pipe) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Cap reports the pipe's buffer capacity.
func (p *Pipe) Cap() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf)
}

func (p *Pipe) Next() (*Record, bool) {
	p.mu.Lock()
	for p.n == 0 && !p.closed && !p.aborted {
		p.notEmpty.Wait()
	}
	if p.aborted || p.n == 0 { // aborted, or closed and fully drained
		p.mu.Unlock()
		return nil, false
	}
	p.cur = p.buf[p.head]
	p.buf[p.head] = Record{} // do not pin the record's strings
	p.head = (p.head + 1) % len(p.buf)
	p.n--
	p.mu.Unlock()
	p.notFull.Signal()
	return &p.cur, true
}

// NextBatch moves up to len(dst) buffered records into dst and reports
// how many. It blocks like Next while the pipe is open and empty, and
// returns 0, false once the pipe is aborted or closed and drained.
// Consumed slots are zeroed so the pipe does not pin record strings.
func (p *Pipe) NextBatch(dst []Record) (int, bool) {
	if len(dst) == 0 {
		return 0, true
	}
	p.mu.Lock()
	for p.n == 0 && !p.closed && !p.aborted {
		p.notEmpty.Wait()
	}
	if p.aborted || p.n == 0 { // aborted, or closed and fully drained
		p.mu.Unlock()
		return 0, false
	}
	want := p.n
	if want > len(dst) {
		want = len(dst)
	}
	// At most two segments (ring wrap), zeroing behind the copy.
	c := copy(dst, p.buf[p.head:min(p.head+want, len(p.buf))])
	clear(p.buf[p.head : p.head+c])
	if c < want {
		c2 := copy(dst[c:want], p.buf)
		clear(p.buf[:c2])
	}
	p.head = (p.head + want) % len(p.buf)
	p.n -= want
	p.mu.Unlock()
	p.notFull.Broadcast()
	return want, true
}

// ReaderSource streams JSONL records from r without materializing the
// dataset. Check Err after Next returns false.
type ReaderSource struct {
	sc   *bufio.Scanner
	dec  Decoder
	cur  Record
	line int
	err  error
}

// NewReaderSource wraps a JSONL stream.
func NewReaderSource(r io.Reader) *ReaderSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return &ReaderSource{sc: sc}
}

func (s *ReaderSource) Next() (*Record, bool) {
	if s.err != nil {
		return nil, false
	}
	for s.sc.Scan() {
		s.line++
		if len(s.sc.Bytes()) == 0 {
			continue
		}
		if err := s.dec.Decode(s.sc.Bytes(), &s.cur); err != nil {
			s.err = &LineError{Line: s.line, Err: err}
			return nil, false
		}
		return &s.cur, true
	}
	if err := s.sc.Err(); err != nil {
		// Read-layer failures (e.g. a truncated gzip stream) carry the
		// position too, so operators know how far the stream got.
		s.err = &LineError{Line: s.line, After: true, Err: err}
	}
	return nil, false
}

// Err reports the first decode or read error encountered.
func (s *ReaderSource) Err() error { return s.err }

// Line reports the number of the last JSONL line consumed (1-based;
// 0 before the first line).
func (s *ReaderSource) Line() int { return s.line }

// gzipMagic is the two-byte gzip member header (RFC 1952).
var gzipMagic = []byte{0x1f, 0x8b}

// NewDecodingReader sniffs r's first bytes and transparently unwraps a
// gzip stream, so callers accept .jsonl and .jsonl.gz alike without
// trusting file extensions.
func NewDecodingReader(r io.Reader) (io.Reader, error) {
	br := bufio.NewReaderSize(r, 1<<15)
	head, err := br.Peek(2)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("dataset: sniff input: %w", err)
	}
	if len(head) == 2 && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("dataset: gzip input: %w", err)
		}
		return zr, nil
	}
	return br, nil
}

// FileSource is a ReaderSource over a (possibly gzip-compressed)
// dataset file. Close it when done.
type FileSource struct {
	*ReaderSource
	f *os.File
}

// Open opens a JSONL dataset file for streaming, transparently
// decoding gzip input (sniffed by magic bytes, not extension).
func Open(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewDecodingReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileSource{ReaderSource: NewReaderSource(r), f: f}, nil
}

// Close releases the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }

// ContextSource stops yielding records once ctx is cancelled, which
// propagates Ctrl-C through streaming consumers (NewFromSource,
// CollectStream) that otherwise only stop at end of input.
type ContextSource struct {
	ctx context.Context
	src RecordSource
}

// NewContextSource wraps src with ctx cancellation.
func NewContextSource(ctx context.Context, src RecordSource) *ContextSource {
	return &ContextSource{ctx: ctx, src: src}
}

func (s *ContextSource) Next() (*Record, bool) {
	if s.ctx.Err() != nil {
		return nil, false
	}
	return s.src.Next()
}

// Err returns the cancellation cause, or the wrapped source's own
// error when it exposes one.
func (s *ContextSource) Err() error {
	if err := s.ctx.Err(); err != nil {
		return err
	}
	if es, ok := s.src.(interface{ Err() error }); ok {
		return es.Err()
	}
	return nil
}
