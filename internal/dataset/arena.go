package dataset

import "unsafe"

// Arena allocators for the ingest hot path. Records flow through the
// pipeline at hundreds of thousands per second; giving each one its own
// string/slice allocations makes the garbage collector the bottleneck
// long before the CPU. The arenas below hand out memory from large
// chunks with a bump pointer, so the per-record allocation count drops
// to the amortized chunk rate (one malloc per few thousand records).
//
// Safety model: a chunk is append-only — once a span is handed out it
// is never rewritten or moved (a full chunk is abandoned, never grown
// in place), so strings built over arena bytes with unsafe.String are
// as immutable as ordinary Go strings. Abandoned chunks are garbage
// collected once every record referencing them dies; retained records
// (the slab store) pin exactly the chunks backing their data, which is
// the same retention the old per-record allocations had.
//
// Arenas are single-owner: each Decoder and each RecordStore embeds its
// own, serialized by the owner's existing usage contract.

// Chunk sizing: big enough to amortize the malloc to noise, small
// enough that an abandoned tail wastes little.
const (
	byteArenaChunk  = 64 << 10 // string bytes
	sliceArenaChunk = 4 << 10  // slice-header/element arenas, in elements
)

// byteArena hands out immutable strings backed by large shared chunks.
type byteArena struct {
	buf []byte // current chunk; len = fill point, cap = chunk size
}

// intern copies b into the arena and returns it as a string, without a
// per-call allocation (amortized: one chunk allocation per
// byteArenaChunk bytes interned).
func (a *byteArena) intern(b []byte) string {
	n := len(b)
	if n == 0 {
		return ""
	}
	if len(a.buf)+n > cap(a.buf) {
		size := byteArenaChunk
		if n > size {
			size = n
		}
		a.buf = make([]byte, 0, size)
	}
	off := len(a.buf)
	a.buf = append(a.buf, b...)
	return unsafe.String(&a.buf[off], n)
}

// Arena hands out fixed-length []T spans from large shared chunks.
// Spans are returned with len == cap == n, so a caller-side append
// copies out instead of writing into the neighbouring span. Exported
// because other hot paths (per-worker classification in analysis) need
// the same amortization; the zero value is ready to use. Not safe for
// concurrent use.
type Arena[T any] struct {
	buf []T
}

// Alloc returns a zeroed span of n elements. n must be > 0.
func (a *Arena[T]) Alloc(n int) []T {
	if len(a.buf)+n > cap(a.buf) {
		size := sliceArenaChunk
		if n > size {
			size = n
		}
		a.buf = make([]T, 0, size)
	}
	off := len(a.buf)
	a.buf = a.buf[:off+n]
	return a.buf[off : off+n : off+n]
}
