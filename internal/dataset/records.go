package dataset

// Slab sizing for RecordStore: fixed 4096-record slabs keep append cost
// O(1) without the realloc-copy spikes of a single growing slice, and
// make lock-free prefix reads safe — a slot, once written, is never
// moved or rewritten.
const (
	slabShift = 12
	slabSize  = 1 << slabShift
	slabMask  = slabSize - 1
)

// Clone returns a deep copy of the record: the parallel attempt slices
// get fresh backing arrays, so mutating the original afterwards cannot
// alias into the copy. Nil slices stay nil (MarshalJSON distinguishes
// null from []).
func (r Record) Clone() Record {
	c := r
	c.FromIP = cloneStrings(r.FromIP)
	c.ToIP = cloneStrings(r.ToIP)
	c.DeliveryResult = cloneStrings(r.DeliveryResult)
	if r.DeliveryLatency != nil {
		c.DeliveryLatency = make([]int64, len(r.DeliveryLatency))
		copy(c.DeliveryLatency, r.DeliveryLatency)
	}
	return c
}

func cloneStrings(s []string) []string {
	if s == nil {
		return nil
	}
	c := make([]string, len(s))
	copy(c, s)
	return c
}

// RecordStore holds records in fixed-size slabs. It is not
// concurrency-safe by itself; callers serialize Append/AppendCopy and
// take View under the same lock. Slots already appended are immutable,
// so a View taken under the lock may be read lock-free afterwards while
// further Appends proceed.
type RecordStore struct {
	slabs [][]Record
	n     int

	// Arenas backing AppendCopy's isolated slices. Spans handed out are
	// full-capacity and never rewritten, so views alias them safely.
	strs Arena[string]
	ints Arena[int64]
}

// Append adds rec to the store. The store keeps rec as given — callers
// that need isolation from later caller-side mutation pass rec.Clone().
func (s *RecordStore) Append(rec Record) {
	if s.n>>slabShift == len(s.slabs) {
		s.slabs = append(s.slabs, make([]Record, 0, slabSize))
	}
	i := s.n >> slabShift
	s.slabs[i] = append(s.slabs[i], rec)
	s.n++
}

// AppendCopy appends an isolated copy of *rec: the attempt slices are
// copied into store-owned arena chunks, so the caller may mutate or
// reuse rec (and its slice backings) afterwards without aliasing into
// the store. String bytes are shared — Go strings are immutable, so
// that sharing is invisible. Nil slices stay nil and non-nil empties
// stay non-nil (MarshalJSON's null-vs-[] distinction), matching
// Record.Clone, but without its three per-record allocations.
func (s *RecordStore) AppendCopy(rec *Record) {
	c := *rec
	c.FromIP = s.copyStrings(rec.FromIP)
	c.ToIP = s.copyStrings(rec.ToIP)
	c.DeliveryResult = s.copyStrings(rec.DeliveryResult)
	switch {
	case rec.DeliveryLatency == nil:
	case len(rec.DeliveryLatency) == 0:
		c.DeliveryLatency = emptyInts
	default:
		c.DeliveryLatency = s.ints.Alloc(len(rec.DeliveryLatency))
		copy(c.DeliveryLatency, rec.DeliveryLatency)
	}
	s.Append(c)
}

func (s *RecordStore) copyStrings(src []string) []string {
	if src == nil {
		return nil
	}
	if len(src) == 0 {
		return emptyStrings
	}
	dst := s.strs.Alloc(len(src))
	copy(dst, src)
	return dst
}

// Len returns the number of records appended so far.
func (s *RecordStore) Len() int { return s.n }

// View returns an immutable prefix view over the records appended so
// far. The slab headers are copied, so later Appends (even ones that
// extend the final slab in place) are invisible to the view.
func (s *RecordStore) View() Records {
	slabs := make([][]Record, len(s.slabs))
	copy(slabs, s.slabs)
	return Records{slabs: slabs, n: s.n}
}

// Records is a read-only, index-addressable view over a sequence of
// records — either a plain slice or a RecordStore prefix. It is a small
// value (copy freely); the underlying records must not be mutated.
type Records struct {
	flat  []Record
	slabs [][]Record
	n     int
}

// SliceRecords wraps a plain slice as a Records view.
func SliceRecords(rs []Record) Records { return Records{flat: rs, n: len(rs)} }

// Len returns the number of records in the view.
func (v Records) Len() int { return v.n }

// At returns the i-th record. The pointer stays valid for the lifetime
// of the view; callers must not mutate through it.
func (v Records) At(i int) *Record {
	if v.flat != nil {
		return &v.flat[i]
	}
	return &v.slabs[i>>slabShift][i&slabMask]
}

// Flatten copies the view into a new contiguous slice.
func (v Records) Flatten() []Record {
	out := make([]Record, v.n)
	for i := 0; i < v.n; i++ {
		out[i] = *v.At(i)
	}
	return out
}
