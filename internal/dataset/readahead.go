package dataset

import "io"

// readAheadBlock is the size of one prefetch buffer. Matches the
// parallel decoder's block size so one prefetched buffer feeds one
// decode chunk.
const readAheadBlock = 256 << 10

// ReadAhead pumps an underlying reader from its own goroutine,
// buffering up to depth blocks ahead of the consumer. Wrapping a gzip
// stream with it overlaps decompression with downstream decode work:
// the pump inflates the next blocks while the parallel reader's
// workers are still parsing the current ones. On a single-CPU host it
// degrades to plain buffered reading.
//
// Read is not safe for concurrent use (io.Reader's usual contract).
// Close releases the pump goroutine and must be called exactly once;
// it does not close the underlying reader.
type ReadAhead struct {
	blocks chan raBlock
	free   chan []byte
	stop   chan struct{}
	cur    raBlock
	off    int
	err    error
}

type raBlock struct {
	buf []byte
	err error
}

// NewReadAhead starts prefetching from r, keeping up to depth blocks
// (plus one in flight) buffered. depth < 1 is treated as 1.
func NewReadAhead(r io.Reader, depth int) *ReadAhead {
	if depth < 1 {
		depth = 1
	}
	ra := &ReadAhead{
		blocks: make(chan raBlock, depth),
		free:   make(chan []byte, depth+1),
		stop:   make(chan struct{}),
	}
	for i := 0; i < depth+1; i++ {
		ra.free <- make([]byte, readAheadBlock)
	}
	go ra.pump(r)
	return ra
}

func (ra *ReadAhead) pump(r io.Reader) {
	defer close(ra.blocks)
	for {
		var buf []byte
		select {
		case buf = <-ra.free:
		case <-ra.stop:
			return
		}
		n, err := io.ReadFull(r, buf)
		if n > 0 || err != nil {
			if err == io.ErrUnexpectedEOF {
				err = io.EOF
			}
			select {
			case ra.blocks <- raBlock{buf: buf[:n], err: err}:
			case <-ra.stop:
				return
			}
		}
		if err != nil {
			return
		}
	}
}

func (ra *ReadAhead) Read(p []byte) (int, error) {
	for ra.off == len(ra.cur.buf) {
		if ra.cur.err != nil {
			return 0, ra.cur.err
		}
		if ra.err != nil {
			return 0, ra.err
		}
		b, ok := <-ra.blocks
		if !ok {
			ra.err = io.EOF
			return 0, io.EOF
		}
		if ra.cur.buf != nil {
			// Recycle the drained buffer for the pump.
			select {
			case ra.free <- ra.cur.buf[:cap(ra.cur.buf)]:
			default:
			}
		}
		ra.cur = b
		ra.off = 0
	}
	n := copy(p, ra.cur.buf[ra.off:])
	ra.off += n
	if ra.off == len(ra.cur.buf) && ra.cur.err != nil && n > 0 {
		// Deliver the data now; the error surfaces on the next call.
		return n, nil
	}
	return n, nil
}

// Close stops the pump goroutine. The underlying reader is left to the
// caller. Always returns nil.
func (ra *ReadAhead) Close() error {
	select {
	case <-ra.stop:
	default:
		close(ra.stop)
	}
	// Drain so a pump blocked on a full blocks channel sees stop.
	for range ra.blocks {
	}
	return nil
}
