package core
