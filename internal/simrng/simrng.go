// Package simrng provides the deterministic randomness used by every
// generator in the simulation. All randomness in a run flows from one
// seed; named sub-streams keep independent subsystems reproducible even
// when the order or volume of draws in another subsystem changes.
package simrng

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
	"sort"
)

// RNG is a deterministic random source with the distribution samplers the
// world generator and delivery engine need.
type RNG struct {
	src *rand.Rand
}

// New returns an RNG seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{src: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Stream derives an independent, named sub-RNG. Two streams with different
// names never share state; the same (seed, name) pair always yields the
// same stream.
func (r *RNG) Stream(name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	return &RNG{src: rand.New(rand.NewPCG(r.src.Uint64()^h.Sum64(), h.Sum64()))}
}

// Float64 returns a uniform float in [0,1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform int in [0,n). It panics if n <= 0.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Int64N returns a uniform int64 in [0,n). It panics if n <= 0.
func (r *RNG) Int64N(n int64) int64 { return r.src.Int64N(n) }

// Uint64 returns a uniform 64-bit value.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.src.Float64() < p }

// NormFloat64 returns a standard normal variate.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// Exp returns an exponential variate with the given mean. The world model
// uses it for inter-arrival times and short misconfiguration episodes.
func (r *RNG) Exp(mean float64) float64 {
	return r.src.ExpFloat64() * mean
}

// LogNormal returns a log-normal variate parameterized by the mean and
// standard deviation of the underlying normal. Misconfiguration-episode
// durations (Figure 7) are heavy-tailed and modeled log-normally.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.src.NormFloat64())
}

// Pareto returns a Pareto variate with scale xm and shape alpha.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.src.Float64()
	for u == 0 {
		u = r.src.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Poisson returns a Poisson variate with the given mean, using Knuth's
// method for small means and a normal approximation for large ones.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		v := int(math.Round(mean + math.Sqrt(mean)*r.src.NormFloat64()))
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.src.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Pick returns a uniformly chosen element of items. It panics on an empty
// slice, matching IntN's contract.
func Pick[T any](r *RNG, items []T) T { return items[r.IntN(len(items))] }

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s. It precomputes the cumulative distribution once so each
// draw is a binary search; the InEmailRank popularity model uses it for
// receiver-domain selection.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("simrng: NewZipf needs n > 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws a rank in [0, N()).
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability mass of the given rank.
func (z *Zipf) Prob(rank int) float64 {
	if rank == 0 {
		return z.cdf[0]
	}
	return z.cdf[rank] - z.cdf[rank-1]
}

// Weighted samples indices with probability proportional to the supplied
// weights. Weights of zero are legal; negative weights panic.
type Weighted struct {
	cdf []float64
}

// NewWeighted builds a weighted sampler. At least one weight must be
// positive.
func NewWeighted(weights []float64) *Weighted {
	cdf := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("simrng: negative weight")
		}
		sum += w
		cdf[i] = sum
	}
	if sum == 0 {
		panic("simrng: all weights zero")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Weighted{cdf: cdf}
}

// Sample draws an index in [0, len(weights)).
func (w *Weighted) Sample(r *RNG) int {
	u := r.Float64()
	i := sort.SearchFloat64s(w.cdf, u)
	// Guard against rounding pushing the search past the last entry.
	if i >= len(w.cdf) {
		i = len(w.cdf) - 1
	}
	// u == 0 can land on a zero-weight prefix; advance to the first
	// index with positive mass.
	for i < len(w.cdf)-1 && w.cdf[i] == 0 {
		i++
	}
	return i
}
