package simrng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal draws", same)
	}
}

func TestStreamIndependence(t *testing.T) {
	// Streams with the same name derived from freshly seeded parents are
	// reproducible; differently named streams differ.
	s1 := New(7).Stream("dns")
	s2 := New(7).Stream("dns")
	s3 := New(7).Stream("blocklist")
	for i := 0; i < 100; i++ {
		v1, v2, v3 := s1.Uint64(), s2.Uint64(), s3.Uint64()
		if v1 != v2 {
			t.Fatalf("same-name streams diverged at %d", i)
		}
		if v1 == v3 {
			t.Fatalf("different-name streams collided at %d", i)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(3)
	const n = 200000
	for _, p := range []float64{0.0, 0.1, 0.5, 0.9, 1.0} {
		hits := 0
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bool(%g) frequency %g", p, got)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(12)
	}
	mean := sum / n
	if math.Abs(mean-12) > 0.3 {
		t.Errorf("Exp(12) sample mean %g", mean)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(5)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(2, 1)
	}
	// Median of LogNormal(mu, sigma) is e^mu. Use a selection-free check:
	// count below e^2.
	below := 0
	for _, v := range vals {
		if v < math.Exp(2) {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("LogNormal median check: %g below e^mu, want ~0.5", frac)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(6)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(3, 1.5)
		if v < 3 {
			t.Fatalf("Pareto(3,1.5) produced %g < xm", v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(7)
	for _, mean := range []float64{0.5, 4, 30, 200} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Errorf("Poisson(%g) sample mean %g", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestZipfDistribution(t *testing.T) {
	r := New(8)
	z := NewZipf(100, 1.0)
	const n = 300000
	counts := make([]int, 100)
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	// Rank 0 should receive close to its theoretical mass and strictly
	// dominate rank 9 by roughly 10x (s=1).
	got0 := float64(counts[0]) / n
	if math.Abs(got0-z.Prob(0)) > 0.01 {
		t.Errorf("rank-0 frequency %g want %g", got0, z.Prob(0))
	}
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 7 || ratio > 13 {
		t.Errorf("rank0/rank9 ratio %g, want ~10", ratio)
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(50, 0.8)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("Zipf probabilities sum to %g", sum)
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0) should panic")
		}
	}()
	NewZipf(0, 1)
}

func TestWeightedSample(t *testing.T) {
	r := New(9)
	w := NewWeighted([]float64{0, 1, 3, 0, 6})
	const n = 200000
	counts := make([]int, 5)
	for i := 0; i < n; i++ {
		counts[w.Sample(r)]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Errorf("zero-weight indices sampled: %v", counts)
	}
	if f := float64(counts[4]) / n; math.Abs(f-0.6) > 0.01 {
		t.Errorf("weight-6 index frequency %g want 0.6", f)
	}
	if f := float64(counts[1]) / n; math.Abs(f-0.1) > 0.01 {
		t.Errorf("weight-1 index frequency %g want 0.1", f)
	}
}

func TestWeightedPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"negative": {1, -1},
		"allZero":  {0, 0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWeighted(%s) should panic", name)
				}
			}()
			NewWeighted(weights)
		}()
	}
}

func TestPick(t *testing.T) {
	r := New(10)
	items := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, items)] = true
	}
	if len(seen) != 3 {
		t.Errorf("Pick over 100 draws saw %d/3 items", len(seen))
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntNRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := New(seed).IntN(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
