package smtpbridge

import (
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/ndr"
	"repro/internal/simrng"
	"repro/internal/smtp"
	"repro/internal/spamfilter"
	"repro/internal/world"
)

var at = clock.StudyStart.AddDate(0, 0, 20).Add(12 * time.Hour)

func tinyWorld(t *testing.T) *world.World {
	t.Helper()
	return world.New(world.TinyConfig())
}

// serve starts the bridge for domain d and returns its address. The
// source-rate stage is ablated: these tests replay many messages from
// one loopback identity at a single virtual instant, which a per-source
// throttle would (correctly) defer.
func serve(t *testing.T, w *world.World, d *world.ReceiverDomain) string {
	t.Helper()
	srv := smtp.NewServer(Backend(w, d, Options{At: at, Seed: 1,
		DisableStages: []string{"source-rate"}}))
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv.Addr().String()
}

// cleanDomain finds a plain-policy domain for focused checks.
func cleanDomain(t *testing.T, w *world.World) *world.ReceiverDomain {
	t.Helper()
	for _, d := range w.Domains {
		p := d.Policy
		if d.Rank >= 11 && !p.AmbiguousNDR && !p.UsesDNSBL && !p.Greylisting &&
			p.TLS != world.TLSMandatory && p.QuirkProb == 0 && len(d.UserList) > 3 {
			return d
		}
	}
	t.Skip("no clean domain in tiny world")
	return nil
}

func send(t *testing.T, addr, from, to, body string) *smtp.Reply {
	t.Helper()
	rep, err := smtp.SendMail(addr, from, to, []byte(body), smtp.SendOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestWireMatchesPolicyForRecipients(t *testing.T) {
	w := tinyWorld(t)
	d := cleanDomain(t, w)
	addr := serve(t, w, d)

	// Every simulated mailbox state must produce the equivalent wire
	// verdict: the subset check DESIGN.md promises.
	checked := 0
	for _, local := range d.UserList {
		mbox := d.Users[local]
		rep := send(t, addr, "tester@sender.example", local+"@"+d.Name, "meeting agenda timesheet")
		var want Verdict
		switch {
		case mbox.InactiveAt(at):
			want = RejectedPermanent
		case mbox.FullAt(at):
			// Quota templates are 4xx or 5xx depending on dialect; both
			// are rejections.
			if Classify(rep) == Accepted {
				t.Errorf("full mailbox %s accepted on the wire", local)
			}
			continue
		default:
			want = Accepted
		}
		if got := Classify(rep); got != want {
			t.Errorf("user %s: wire verdict %v want %v (%s)", local, got, want, rep)
		}
		checked++
		if checked >= 12 {
			break
		}
	}

	// Ghost recipient: permanent rejection with T8-style text.
	rep := send(t, addr, "tester@sender.example", "no-such-user-zz@"+d.Name, "hello")
	if Classify(rep) != RejectedPermanent {
		t.Errorf("ghost user verdict: %s", rep)
	}
}

func TestWireContentFilterMatchesSimulator(t *testing.T) {
	w := tinyWorld(t)
	d := cleanDomain(t, w)
	addr := serve(t, w, d)
	to := d.UserList[0] + "@" + d.Name

	spammy := strings.Join(spamfilter.GenerateTokens(simRNG(), 0.97, 16), " ")
	hammy := "meeting agenda quarterly-report timesheet invoice"

	repSpam := send(t, addr, "x@s.example", to, spammy)
	repHam := send(t, addr, "x@s.example", to, hammy)

	wantSpam := d.Filter.Classify(strings.Fields(spammy))
	wantHam := d.Filter.Classify(strings.Fields(hammy))
	if (Classify(repSpam) != Accepted) != wantSpam {
		t.Errorf("spam verdict mismatch: wire %s, filter says %v", repSpam, wantSpam)
	}
	if (Classify(repHam) != Accepted) != wantHam {
		t.Errorf("ham verdict mismatch: wire %s, filter says %v", repHam, wantHam)
	}
}

func TestWireGreylisting(t *testing.T) {
	w := tinyWorld(t)
	var d *world.ReceiverDomain
	for _, cand := range w.Domains {
		if cand.Policy.Greylisting && cand.Greylist != nil && len(cand.UserList) > 0 {
			d = cand
			break
		}
	}
	if d == nil {
		t.Skip("no greylisting domain in tiny world")
	}
	addr := serve(t, w, d)
	to := d.UserList[0] + "@" + d.Name
	rep := send(t, addr, "a@s.example", to, "hello")
	if Classify(rep) != RejectedTemporary {
		t.Fatalf("first tuple contact should defer: %s", rep)
	}
	// The wire NDR must be greylist-flavored.
	if !strings.Contains(strings.ToLower(rep.String()), "greylist") {
		t.Errorf("greylist NDR text: %s", rep)
	}
}

func TestWireBlocklistViaHELOIdentity(t *testing.T) {
	w := tinyWorld(t)
	var d *world.ReceiverDomain
	for _, cand := range w.Domains {
		p := cand.Policy
		if p.UsesDNSBL && !p.DNSBLFrom.After(at) && !p.Greylisting &&
			p.TLS != world.TLSMandatory && len(cand.UserList) > 0 && !p.AmbiguousNDR {
			d = cand
			break
		}
	}
	if d == nil {
		t.Skip("no DNSBL domain in tiny world")
	}
	// List proxy 0 and impersonate it by EHLO hostname.
	proxy := w.Proxies[0]
	w.Blocklist.ReportSpam(proxy.IP, at.Add(-time.Hour))
	if !w.Blocklist.Listed(proxy.IP, at) {
		t.Fatal("proxy not listed")
	}
	addr := serve(t, w, d)
	to := d.UserList[0] + "@" + d.Name
	rep, err := smtp.SendMail(addr, "a@s.example", to, []byte("hi"),
		smtp.SendOptions{Helo: proxy.Hostname, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if Classify(rep) == Accepted {
		t.Fatalf("listed proxy accepted: %s", rep)
	}
	// A clean identity passes.
	rep, err = smtp.SendMail(addr, "a@s.example", to, []byte("meeting agenda"),
		smtp.SendOptions{Helo: "clean.sender.example", Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if Classify(rep) != Accepted {
		t.Fatalf("clean sender rejected: %s", rep)
	}
}

func TestWireAmbiguousDomainText(t *testing.T) {
	w := tinyWorld(t)
	d := w.DomainByName["hotmail.com"]
	addr := serve(t, w, d)
	rep := send(t, addr, "a@s.example", "ghost-zz@hotmail.com", "hello")
	if Classify(rep) == Accepted {
		t.Fatalf("ghost accepted: %s", rep)
	}
	text := rep.String()
	informative := strings.Contains(text, "could not be found") ||
		strings.Contains(text, "does not exist") || strings.Contains(text, "User unknown")
	if informative {
		t.Errorf("ambiguous domain leaked informative NDR: %s", text)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		line string
		want Verdict
	}{
		{"250 2.0.0 OK", Accepted},
		{"450 4.7.1 Greylisted", RejectedTemporary},
		{"550 5.1.1 no such user", RejectedPermanent},
	}
	for _, c := range cases {
		if got := Classify(smtp.FromNDRLine(c.line)); got != c.want {
			t.Errorf("Classify(%q) = %v want %v", c.line, got, c.want)
		}
	}
}

func TestVerdictTextUsesCatalog(t *testing.T) {
	// Wire NDRs must come from the shared catalog so the analysis
	// pipeline can classify them.
	w := tinyWorld(t)
	d := cleanDomain(t, w)
	addr := serve(t, w, d)
	rep := send(t, addr, "a@s.example", "ghost-yy@"+d.Name, "hello")
	matched := false
	for _, i := range ndr.TemplatesFor(ndr.T8NoSuchUser) {
		sig := ndr.Catalog[i].Text
		if j := strings.IndexByte(sig, '{'); j > 4 {
			sig = sig[4:j] // skip the code prefix, stop at first placeholder
		}
		if sig != "" && strings.Contains(rep.String(), strings.TrimSpace(sig)) {
			matched = true
		}
	}
	if !matched {
		t.Errorf("wire NDR not from catalog: %s", rep)
	}
}

func simRNG() *simrng.RNG { return simrng.New(99) }
