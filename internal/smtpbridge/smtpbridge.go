// Package smtpbridge serves a simulated receiver domain's policy over
// the real SMTP substrate: it builds an smtp.Backend whose callbacks
// make the same decisions (recipient existence, inactive accounts,
// quota at a virtual instant, recipient count, TLS mandate, DNSBL,
// greylisting, content filtering) as the bulk delivery engine, and
// renders the same NDR catalog templates on the wire. Integration tests
// use it to prove the wire path is a true subset of the in-process
// simulation; cmd/mailsim-style tools can expose any generated domain
// as a live MTA.
package smtpbridge

import (
	"crypto/tls"
	"fmt"
	"strings"
	"time"

	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/ndr"
	"repro/internal/simrng"
	"repro/internal/smtp"
	"repro/internal/world"
)

// Options configures the bridge.
type Options struct {
	// At is the virtual instant policy is evaluated at (quota windows,
	// blocklist state, DNSBL adoption date).
	At time.Time
	// TLS enables STARTTLS; required when the domain mandates TLS.
	TLS *tls.Config
	// ClientIP maps a session to the simulated client address used for
	// DNSBL and greylist decisions. Defaults to resolving the EHLO
	// hostname in the world's DNS (falling back to the socket address),
	// so tests can impersonate proxy MTAs by HELO name.
	ClientIP func(s *smtp.Session) string
	// Seed drives template dialect jitter.
	Seed uint64
}

// Backend builds the policy-enforcing backend for domain d of world w.
func Backend(w *world.World, d *world.ReceiverDomain, opts Options) smtp.Backend {
	if opts.At.IsZero() {
		opts.At = time.Date(2022, 7, 1, 12, 0, 0, 0, time.UTC)
	}
	rng := simrng.New(opts.Seed ^ 0xb21d6e)
	clientIP := opts.ClientIP
	if clientIP == nil {
		clientIP = func(s *smtp.Session) string {
			if s.Hostname != "" {
				if ips, code := w.Resolver.ResolveA(s.Hostname, opts.At); code == 0 && len(ips) > 0 {
					return ips[0]
				}
			}
			return s.RemoteAddr
		}
	}
	render := func(typ ndr.Type, to string) *smtp.Reply {
		local, _, _ := strings.Cut(to, "@")
		idx := -1
		if d.Policy.AmbiguousNDR && ambiguousEligible(typ) {
			idx = d.AmbiguousTemplate(rng)
		}
		if idx < 0 {
			idx = d.TemplateFor(typ, rng)
		}
		line := ndr.Catalog[idx].Render(ndr.Params{
			Addr: to, Local: local, Domain: d.Name, IP: "client",
			MX: d.MXHost, BL: "Spamhaus", Vendor: fmt.Sprintf("w%06x", rng.Uint64()&0xffffff),
			Sec: "300", Size: fmt.Sprintf("%d", d.Policy.MaxMsgSize),
		})
		return smtp.FromNDRLine(line)
	}

	return smtp.Backend{
		Hostname:   d.MXHost,
		TLSConfig:  opts.TLS,
		RequireTLS: d.Policy.TLS == world.TLSMandatory && opts.TLS != nil,
		MaxSize:    d.Policy.MaxMsgSize,
		OnMail: func(s *smtp.Session, from string) *smtp.Reply {
			ip := clientIP(s)
			if d.Policy.UsesDNSBL && !opts.At.Before(d.Policy.DNSBLFrom) &&
				w.Blocklist.Listed(ip, opts.At) {
				return render(ndr.T5Blocklisted, from)
			}
			return nil
		},
		OnRcpt: func(s *smtp.Session, from, to string) *smtp.Reply {
			addr, err := mail.ParseAddress(to)
			if err != nil {
				return smtp.NewReply(mail.CodeNameNotAllowed, mail.EnhBadMailbox, "malformed recipient")
			}
			if d.Policy.Greylisting && d.Greylist != nil {
				if v := d.Greylist.Check(clientIP(s), from, to, opts.At); v == greylist.Defer {
					return render(ndr.T6Greylisted, to)
				}
			}
			if d.Policy.MaxRcpts > 0 && len(s.Rcpts) >= d.Policy.MaxRcpts {
				return render(ndr.T10TooManyRcpts, to)
			}
			mbox, ok := d.Users[addr.Local]
			if !ok {
				return render(ndr.T8NoSuchUser, to)
			}
			if mbox.InactiveAt(opts.At) {
				return render(ndr.T8NoSuchUser, to)
			}
			if mbox.FullAt(opts.At) {
				return render(ndr.T9MailboxFull, to)
			}
			return nil
		},
		OnData: func(s *smtp.Session, data []byte) *smtp.Reply {
			if d.Filter.Classify(strings.Fields(string(data))) {
				return render(ndr.T13ContentSpam, s.From)
			}
			return nil
		},
	}
}

// ambiguousEligible mirrors the delivery engine's ambiguity rule for
// receiver-side rejection types.
func ambiguousEligible(typ ndr.Type) bool {
	switch typ {
	case ndr.T8NoSuchUser, ndr.T13ContentSpam, ndr.T11RateLimited, ndr.T5Blocklisted:
		return true
	}
	return false
}

// Verdict summarizes a wire reply for equivalence checks.
type Verdict int

// Verdict classes.
const (
	Accepted Verdict = iota
	RejectedPermanent
	RejectedTemporary
)

// Classify maps a reply to its verdict class.
func Classify(rep *smtp.Reply) Verdict {
	switch {
	case rep.Success():
		return Accepted
	case rep.Temporary():
		return RejectedTemporary
	default:
		return RejectedPermanent
	}
}
