// Package smtpbridge serves a simulated receiver domain's policy over
// the real SMTP substrate: it maps the domain's internal/policy stage
// chain — the same chain the bulk delivery engine executes linearly —
// onto smtp.Backend phase callbacks (CONNECT/MAIL/RCPT/DATA) and
// renders the shared NDR catalog templates on the wire. Because the
// chain's stage order is phase-monotonic, the wire path and the
// in-process simulator reach the same first rejection for the same
// facts; the differential test in the repo root enforces that
// mechanically. cmd/mailsim exposes any generated domain as a live MTA
// through this bridge.
package smtpbridge

import (
	"crypto/tls"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/dns"
	"repro/internal/mail"
	"repro/internal/ndr"
	"repro/internal/policy"
	"repro/internal/simrng"
	"repro/internal/smtp"
	"repro/internal/world"
)

// Options configures the bridge.
type Options struct {
	// At is the virtual instant policy is evaluated at (quota windows,
	// blocklist state, DNSBL adoption date, rate-limit windows).
	At time.Time
	// TLS enables STARTTLS. When nil and the domain mandates TLS, the
	// "tls" stage is disabled — the server cannot offer the upgrade it
	// would demand.
	TLS *tls.Config
	// ClientIP maps a session to the simulated client address used for
	// DNSBL, greylist, rate-limit and SPF decisions. Defaults to
	// resolving the EHLO hostname in the world's DNS (falling back to
	// the socket address), so tests can impersonate proxy MTAs by HELO
	// name.
	ClientIP func(s *smtp.Session) string
	// Seed drives template dialect jitter and quirk draws.
	Seed uint64
	// Resolver overrides the DNS resolver policy stages query. Defaults
	// to a fresh deterministic resolver over the world's authority
	// (no transient-failure injection).
	Resolver *dns.Resolver
	// DisableStages and ForceStages are the ablation hook, applied to
	// the chain at build time. Stage names must come from
	// policy.StageNames(); unknown names panic (CLIs validate with
	// policy.ParseStageList first).
	DisableStages []string
	ForceStages   []string
	// Metrics receives per-stage rejection counts when non-nil.
	Metrics *policy.Metrics
}

// wireState is the bridge's policy.StageState: one mutex-guarded
// counter/learned store shared by every session of the backend, plus
// the resolver-bound evaluators. Chain evaluation runs under the mutex,
// so concurrent sessions see consistent rate-limit windows.
type wireState struct {
	mu       sync.Mutex
	w        *world.World
	resolver *dns.Resolver
	spf      *auth.SPFEvaluator
	dkim     *auth.DKIMVerifier
	dmarc    *auth.DMARCEvaluator
	counters map[uint64]int
	learned  map[uint64]bool

	// rng is the current evaluation's envelope-derived stream, set by
	// the callback holding mu.
	rng *simrng.RNG
}

func (ws *wireState) RNG() *simrng.RNG            { return ws.rng }
func (ws *wireState) Resolver() *dns.Resolver     { return ws.resolver }
func (ws *wireState) SPF() *auth.SPFEvaluator     { return ws.spf }
func (ws *wireState) DKIM() *auth.DKIMVerifier    { return ws.dkim }
func (ws *wireState) DMARC() *auth.DMARCEvaluator { return ws.dmarc }

func (ws *wireState) Bump(key uint64) int {
	ws.counters[key]++
	return ws.counters[key]
}

func (ws *wireState) Peek(key uint64) int { return ws.counters[key] }

func (ws *wireState) LearnOnce(key uint64) bool {
	if ws.learned[key] {
		return true
	}
	ws.learned[key] = true
	return false
}

// ReportSpam feeds spamtrap hits straight to the shared blocklist (the
// wire path has no ordered-merge step to defer to).
func (ws *wireState) ReportSpam(ip string, at time.Time) { ws.w.Blocklist.ReportSpam(ip, at) }

// Backend builds the policy-enforcing backend for domain d of world w
// by mapping d's stage chain onto the SMTP phase callbacks.
func Backend(w *world.World, d *world.ReceiverDomain, opts Options) smtp.Backend {
	if opts.At.IsZero() {
		opts.At = time.Date(2022, 7, 1, 12, 0, 0, 0, time.UTC)
	}
	resolver := opts.Resolver
	if resolver == nil {
		resolver = dns.NewResolver(w.DNS, nil)
	}
	env := policy.NewEnv(w)
	disable := opts.DisableStages
	if opts.TLS == nil {
		// No certificate means no STARTTLS to upgrade to; demanding it
		// anyway would wedge every plaintext client.
		disable = append(append([]string(nil), disable...), "tls")
	}
	chain := policy.NewChain(env, d, policy.ChainOptions{
		Metrics: opts.Metrics,
		Disable: disable,
		Force:   opts.ForceStages,
	})
	ws := &wireState{
		w:        w,
		resolver: resolver,
		spf:      &auth.SPFEvaluator{Resolver: resolver},
		dkim:     &auth.DKIMVerifier{Resolver: resolver},
		dmarc:    &auth.DMARCEvaluator{Resolver: resolver},
		counters: make(map[uint64]int),
		learned:  make(map[uint64]bool),
	}
	clientIP := opts.ClientIP
	if clientIP == nil {
		clientIP = func(s *smtp.Session) string {
			if s.Hostname != "" {
				if ips, code := resolver.ResolveA(s.Hostname, opts.At); code == 0 && len(ips) > 0 {
					return ips[0]
				}
			}
			return s.RemoteAddr
		}
	}

	// request assembles the policy.Request for one callback. Each wire
	// message counts as a first attempt: retries are new connections the
	// bridge cannot correlate, exactly like a real receiver MTA.
	request := func(s *smtp.Session, from, to string) *policy.Request {
		req := &policy.Request{
			ClientIP: clientIP(s),
			At:       opts.At,
			First:    true,
			TLS:      s.TLS,
		}
		req.Proxy = env.ProxyByIP(req.ClientIP)
		if addr, err := mail.ParseAddress(from); err == nil {
			req.From = addr
		}
		if to != "" {
			if addr, err := mail.ParseAddress(to); err == nil {
				req.To = addr
			}
		}
		req.MsgID = from + "|" + to
		return req
	}

	// evaluate runs one phase of the chain under the shared state lock
	// and renders the rejection, if any, from the shared catalog.
	evaluate := func(p policy.Phase, req *policy.Request) *smtp.Reply {
		ws.mu.Lock()
		defer ws.mu.Unlock()
		ws.rng = simrng.New(opts.Seed ^ 0xb21d6e).Stream("wire:" + req.From.String() + "|" + req.To.String())
		v := chain.EvaluatePhase(p, ws, req)
		if !v.Rejected() {
			return nil
		}
		res := chain.Resolve(v, req)
		line := ndr.Catalog[res.Index].Render(ndr.Params{
			Addr:   req.To.String(),
			Local:  req.To.Local,
			Domain: policy.TemplateDomain(res.Type, req.From.Domain, d.Name),
			IP:     req.ClientIP,
			MX:     d.MXHost,
			BL:     policy.BlocklistName(d.Name),
			Vendor: fmt.Sprintf("w%06x", ws.rng.Uint64()&0xffffff),
			Sec:    "300",
			Size:   fmt.Sprintf("%d", d.Policy.MaxMsgSize),
		})
		return smtp.FromNDRLine(line)
	}

	return smtp.Backend{
		Hostname:  d.MXHost,
		TLSConfig: opts.TLS,
		// The chain's "tls" stage speaks the T4 catalog templates; the
		// server-level RequireTLS shortcut would answer with a hardcoded
		// reply before the chain runs.
		RequireTLS: false,
		MaxSize:    d.Policy.MaxMsgSize,
		OnConnect: func(s *smtp.Session) *smtp.Reply {
			return evaluate(policy.PhaseConnect, request(s, "", ""))
		},
		OnMail: func(s *smtp.Session, from string) *smtp.Reply {
			return evaluate(policy.PhaseMail, request(s, from, ""))
		},
		OnRcpt: func(s *smtp.Session, from, to string) *smtp.Reply {
			if _, err := mail.ParseAddress(to); err != nil {
				return smtp.NewReply(mail.CodeNameNotAllowed, mail.EnhBadMailbox, "malformed recipient")
			}
			req := request(s, from, to)
			req.RcptCount = len(s.Rcpts) + 1
			return evaluate(policy.PhaseRcpt, req)
		},
		OnData: func(s *smtp.Session, data []byte) *smtp.Reply {
			to := ""
			if len(s.Rcpts) > 0 {
				to = s.Rcpts[0]
			}
			req := request(s, s.From, to)
			req.RcptCount = len(s.Rcpts)
			req.SizeBytes = len(data)
			req.Tokens = strings.Fields(string(data))
			return evaluate(policy.PhaseData, req)
		},
	}
}

// Verdict summarizes a wire reply for equivalence checks.
type Verdict int

// Verdict classes.
const (
	Accepted Verdict = iota
	RejectedPermanent
	RejectedTemporary
)

// Classify maps a reply to its verdict class.
func Classify(rep *smtp.Reply) Verdict {
	switch {
	case rep.Success():
		return Accepted
	case rep.Temporary():
		return RejectedTemporary
	default:
		return RejectedPermanent
	}
}
