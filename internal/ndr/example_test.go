package ndr_test

import (
	"fmt"

	"repro/internal/ndr"
)

func ExampleTemplate_Render() {
	idx := ndr.NonAmbiguousTemplatesFor(ndr.T9MailboxFull)[0]
	line := ndr.Catalog[idx].Render(ndr.Params{Addr: "jun@b.com"})
	fmt.Println(line)
	// Output: 452-4.2.2 The email account that you tried to reach is over quota
}

func ExampleParse() {
	p := ndr.Parse("550-5.1.1 jun@b.com Email address could not be found, or was misspelled (g-42)")
	fmt.Println(p.Code, p.Enh, p.Temporary())
	// Output: 550 5.1.1 false
}

func ExampleType_Category() {
	fmt.Println(ndr.T5Blocklisted.Category())
	fmt.Println(ndr.T14Timeout.Category())
	// Output:
	// Restrict email source
	// SMTP connection error
}
