package ndr

import (
	"strings"

	"repro/internal/mail"
)

// Params carries the per-message values substituted into a template.
type Params struct {
	Addr   string // full recipient address
	Local  string // recipient local part
	Domain string // recipient (or sender, for T1/T3) domain
	IP     string // client (proxy MTA) IP
	MX     string // receiver MX host (for sender-side session errors)
	BL     string // blocklist name
	Vendor string // opaque vendor-defined code, e.g. "p05sm12345"
	Sec    string // seconds value (greylist retry, timeout elapsed)
	Size   string // size limit in bytes
}

// Template is one NDR message template. Text contains the full reply
// line including the reply-code prefix, with {placeholders} substituted
// at render time. Code and Enh are the machine-readable ground truth the
// delivery engine uses for retry decisions; Enh.IsZero() marks the
// templates that omit an enhanced status code (28.79% of NDR messages in
// the paper carry none).
type Template struct {
	Type      Type
	Code      mail.ReplyCode
	Enh       mail.EnhancedCode
	Text      string
	Ambiguous bool    // one of the Table-6 ambiguous templates
	Weight    float64 // relative prevalence among the type's templates
}

// Soft reports whether the template signals a transient (4xx) failure.
func (tp *Template) Soft() bool { return tp.Code.Temporary() }

// Render substitutes params into the template text.
func (tp *Template) Render(p Params) string {
	r := strings.NewReplacer(
		"{addr}", p.Addr,
		"{local}", p.Local,
		"{domain}", p.Domain,
		"{ip}", p.IP,
		"{mx}", p.MX,
		"{bl}", p.BL,
		"{vendor}", p.Vendor,
		"{sec}", p.Sec,
		"{size}", p.Size,
	)
	return r.Replace(tp.Text)
}

// enh is shorthand for constructing enhanced codes in the catalog.
func enh(c, s, d int) mail.EnhancedCode { return mail.EnhancedCode{Class: c, Subject: s, Detail: d} }

// Catalog is the full template catalog. Strings quoted in the paper
// appear verbatim. Order is stable; the index is the template's ID.
var Catalog = []Template{
	// ---- T1: sender domain DNS failure (receiver-side checks) ----
	{T1SenderDNS, 450, enh(4, 1, 8), "450 4.1.8 {domain}: Sender address rejected: Domain not found", false, 4},
	{T1SenderDNS, 450, enh(4, 7, 1), "450-4.7.1 Client host rejected: cannot find your hostname, [{ip}]", false, 3},
	{T1SenderDNS, 451, enh(4, 4, 3), "451 4.4.3 Temporary lookup failure on sender domain {domain}", false, 2},
	{T1SenderDNS, 550, mail.EnhancedCode{}, "550 unknown sender domain {domain}", false, 1},

	// ---- T2: receiver domain DNS failure (sender-side, Coremail-written) ----
	{T2ReceiverDNS, 550, enh(5, 4, 4), "550 5.4.4 [internal] Host not found ({domain}): MX lookup failed", false, 5},
	{T2ReceiverDNS, 451, enh(4, 4, 3), "451 4.4.3 [internal] Temporary DNS failure resolving {domain}", false, 2},
	{T2ReceiverDNS, 550, enh(5, 1, 2), "550 5.1.2 Bad destination system address: {domain} NXDOMAIN", false, 3},
	{T2ReceiverDNS, 554, mail.EnhancedCode{}, "554 [internal] No route to host for {domain}: DNS error", false, 1},

	// ---- T3: authentication failure ----
	{T3AuthFail, 421, enh(4, 7, 0), "421-4.7.0 This message does not pass authentication checks (SPF and DKIM both do not pass)", false, 4},
	{T3AuthFail, 550, enh(5, 7, 26), "550-5.7.26 This message does not have authentication information or fails to pass authentication checks (SPF or DKIM)", false, 5},
	{T3AuthFail, 550, enh(5, 7, 26), "550-5.7.26 Unauthenticated email from {domain} is not accepted due to domain's DMARC policy", false, 1},
	{T3AuthFail, 550, enh(5, 7, 1), "550 5.7.1 Email rejected per SPF policy: {ip} is not allowed to send mail from {domain}", false, 2},
	{T3AuthFail, 550, enh(5, 7, 20), "550 5.7.20 No passing DKIM signature found in message from {domain}", false, 1},

	// ---- T4: STARTTLS ----
	{T4STARTTLS, 530, enh(5, 7, 0), "530 5.7.0 Must issue a STARTTLS command first", false, 4},
	{T4STARTTLS, 454, enh(4, 7, 0), "454 4.7.0 TLS not available due to local problem", false, 1},
	{T4STARTTLS, 550, enh(5, 7, 10), "550 5.7.10 Encryption required: {domain} mandates TLS for all mail", false, 2},

	// ---- T5: blocklisted ----
	{T5Blocklisted, 554, mail.EnhancedCode{}, "554 Service unavailable; Client host [{ip}] blocked using {bl}", false, 6},
	{T5Blocklisted, 550, enh(5, 7, 1), "550-5.7.1 This email was rejected because it violates our security policy. Remotehost is listed in the following RBL lists: {bl}", false, 3},
	{T5Blocklisted, 554, enh(5, 7, 1), "554 5.7.1 {ip} listed at {bl}; see delisting portal", false, 2},
	{T5Blocklisted, 421, enh(4, 7, 0), "421 4.7.0 Connection refused: {ip} has poor reputation, try again later", false, 3},
	{T5Blocklisted, 550, mail.EnhancedCode{}, "550 Blocked - consult blocklist removal portal for [{ip}]", false, 1},

	// ---- T6: greylisted ----
	{T6Greylisted, 450, enh(4, 7, 1), "450 4.7.1 Greylisted, please try again in {sec} seconds", false, 4},
	{T6Greylisted, 451, enh(4, 7, 1), "451-4.7.1 Greylisting in action, retry later from the same server", false, 2},
	{T6Greylisted, 450, enh(4, 2, 0), "450 4.2.0 {addr}: Recipient address rejected: Greylisted", false, 2},

	// ---- T7: delivering too fast ----
	{T7TooFast, 421, enh(4, 7, 0), "421 4.7.0 Too many connections from {ip}, slow down", false, 3},
	{T7TooFast, 450, enh(4, 7, 1), "450 4.7.1 Error: too much mail from {ip}, deferring", false, 2},
	{T7TooFast, 421, enh(4, 7, 28), "421-4.7.28 Our system has detected an unusual rate of unsolicited mail originating from your IP address {ip}, deferred", false, 2},

	// ---- T8: no such user ----
	{T8NoSuchUser, 550, enh(5, 1, 1), "550-5.1.1 {addr} Email address could not be found, or was misspelled ({vendor})", false, 6},
	{T8NoSuchUser, 550, enh(5, 7, 1), "550-5.7.1 Recipient address rejected: user {addr} does not exist", false, 4},
	{T8NoSuchUser, 550, enh(5, 1, 1), "550 5.1.1 <{addr}>: Recipient address rejected: User unknown in virtual mailbox table", false, 3},
	{T8NoSuchUser, 550, mail.EnhancedCode{}, "550 No such user {local} here", false, 2},
	{T8NoSuchUser, 550, enh(5, 1, 1), "550 5.1.1 sorry, no mailbox here by that name ({vendor})", false, 1},
	{T8NoSuchUser, 550, enh(5, 2, 1), "550-5.2.1 The email account that you tried to reach is inactive and has been disabled ({vendor})", false, 1},

	// ---- T9: mailbox full ----
	{T9MailboxFull, 452, enh(4, 2, 2), "452-4.2.2 The email account that you tried to reach is over quota", false, 4},
	{T9MailboxFull, 552, enh(5, 2, 2), "552-5.2.2 The email account that you tried to reach is over quota and inactive", false, 2},
	{T9MailboxFull, 501, enh(5, 0, 1), "501-5.0.1 {local} has exceeded his/her disk space limit.", false, 1},
	{T9MailboxFull, 452, enh(4, 1, 1), "452-4.1.1 {addr} mailbox full", false, 3},
	{T9MailboxFull, 552, mail.EnhancedCode{}, "552 Requested mail action aborted: exceeded storage allocation", false, 2},

	// ---- T10: too many recipients ----
	{T10TooManyRcpts, 550, enh(5, 5, 3), "550 5.5.3 Too many recipients for this message", false, 3},
	{T10TooManyRcpts, 452, enh(4, 5, 3), "452 4.5.3 Error: too many recipients", false, 2},

	// ---- T11: rate limited ----
	{T11RateLimited, 450, enh(4, 2, 1), "450 4.2.1 The user you are trying to contact is receiving mail too quickly ({vendor})", false, 3},
	{T11RateLimited, 421, enh(4, 7, 0), "421 4.7.0 {domain} has exceeded its inbound message rate limit", false, 2},
	{T11RateLimited, 452, enh(4, 3, 1), "452 4.3.1 Mail quota exceeded for this hour, try again later", false, 1},
	{T11RateLimited, 550, enh(5, 2, 1), "550 5.2.1 Recipient {addr} receiving at too high a rate, rejected", false, 1},

	// ---- T12: too large ----
	{T12TooLarge, 552, enh(5, 3, 4), "552 5.3.4 Message size exceeds fixed maximum message size", false, 3},
	{T12TooLarge, 554, enh(5, 3, 4), "554 5.3.4 Message too big for system; maximum {size} bytes", false, 2},
	{T12TooLarge, 523, mail.EnhancedCode{}, "523 the message size exceeds the recipient's size limit", false, 1},

	// ---- T13: content spam ----
	{T13ContentSpam, 550, enh(5, 7, 1), "550-5.7.1 Message contains spam or virus. ({vendor})", false, 4},
	{T13ContentSpam, 554, enh(5, 7, 1), "554 5.7.1 The message was rejected because it contains prohibited virus or spam content", false, 3},
	{T13ContentSpam, 550, mail.EnhancedCode{}, "550 High probability of spam; message refused", false, 2},
	{T13ContentSpam, 554, enh(5, 6, 0), "554-5.6.0 Message identified as SPAM ({vendor})", false, 2},

	// ---- T14: session timeout (sender-side, Coremail-written) ----
	{T14Timeout, 421, enh(4, 4, 1), "421 4.4.1 [internal] Connection timed out while talking to {mx}", false, 5},
	{T14Timeout, 451, enh(4, 4, 2), "451 4.4.2 [internal] Timeout waiting for response from {mx} after DATA", false, 3},
	{T14Timeout, 421, mail.EnhancedCode{}, "421 [internal] SMTP session timeout with {mx} ({sec}s elapsed)", false, 2},

	// ---- T15: session interruption (sender-side) ----
	{T15Interrupted, 451, enh(4, 4, 2), "451 4.4.2 [internal] Connection reset by peer during transmission to {mx}", false, 3},
	{T15Interrupted, 421, enh(4, 4, 2), "421 4.4.2 [internal] Lost connection with {mx} while sending RCPT TO", false, 2},
	{T15Interrupted, 451, enh(4, 3, 0), "451 4.3.0 [internal] Remote server {mx} closed connection unexpectedly", false, 2},

	// ---- T16: unknown/other (non-ambiguous oddballs the paper quotes) ----
	{T16Unknown, 550, mail.EnhancedCode{}, "550 ({vendor}) This message is not RFC 5322 compliant", false, 2},
	{T16Unknown, 421, mail.EnhancedCode{}, "421 ({vendor}) Intrusion prevention active for [{ip}]", false, 2},
	{T16Unknown, 554, mail.EnhancedCode{}, "554 Denied ({vendor})", false, 1},

	// ---- Ambiguous Table-6 templates (flagged, typed T16) ----
	{T16Unknown, 550, enh(5, 4, 1), "550 5.4.1 Recipient address rejected: Access denied. AS(201806281) [{vendor}]", true, 20},
	{T16Unknown, 554, enh(5, 7, 1), "554 5.7.1 [{ip}] Message rejected due to local policy. ({vendor})", true, 3},
	{T16Unknown, 550, mail.EnhancedCode{}, "550 ({vendor}) Mail is rejected by recipients", true, 2},
	{T16Unknown, 554, mail.EnhancedCode{}, "554 [{ip}] Not allowed.(CONNECT)", true, 2},
	{T16Unknown, 554, mail.EnhancedCode{}, "554 Relay access denied ({vendor})", true, 1},
}

// typeIndex caches catalog indices per type, built once at init.
var typeIndex = func() map[Type][]int {
	m := make(map[Type][]int)
	for i, tp := range Catalog {
		m[tp.Type] = append(m[tp.Type], i)
	}
	return m
}()

// TemplatesFor returns the catalog indices of all templates of type t
// (including ambiguous ones for T16).
func TemplatesFor(t Type) []int { return typeIndex[t] }

// NonAmbiguousTemplatesFor returns catalog indices of non-ambiguous
// templates of type t.
func NonAmbiguousTemplatesFor(t Type) []int {
	var out []int
	for _, i := range typeIndex[t] {
		if !Catalog[i].Ambiguous {
			out = append(out, i)
		}
	}
	return out
}

// AmbiguousTemplates returns catalog indices of the Table-6 ambiguous
// templates.
func AmbiguousTemplates() []int {
	var out []int
	for i, tp := range Catalog {
		if tp.Ambiguous {
			out = append(out, i)
		}
	}
	return out
}

// SuccessReplies are the acceptance lines receivers send; the dataset's
// delivery_result holds one of these for successful attempts.
var SuccessReplies = []string{
	"250 OK",
	"250 2.0.0 OK: queued as {vendor}",
	"250 2.6.0 <{vendor}@{domain}> accepted",
	"250 2.0.0 Ok: {vendor} bytes queued",
}

// RenderSuccess renders a success reply variant (idx modulo the list).
func RenderSuccess(idx int, p Params) string {
	tpl := SuccessReplies[((idx%len(SuccessReplies))+len(SuccessReplies))%len(SuccessReplies)]
	r := strings.NewReplacer("{vendor}", p.Vendor, "{domain}", p.Domain)
	return r.Replace(tpl)
}
