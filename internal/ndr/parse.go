package ndr

import (
	"strconv"
	"strings"

	"repro/internal/mail"
)

// Parsed is the machine-readable decomposition of one NDR line.
type Parsed struct {
	Code mail.ReplyCode    // 0 when the line carries no leading code
	Enh  mail.EnhancedCode // zero when absent (28.79% of messages)
	Text string            // remainder after code(s)
}

// Success reports whether the line is a 2xx acceptance.
func (p Parsed) Success() bool { return p.Code.Success() }

// Temporary reports whether the line is a 4xx transient failure.
func (p Parsed) Temporary() bool { return p.Code.Temporary() }

// Parse decomposes a delivery_result line: an optional leading 3-digit
// reply code (possibly joined to the enhanced code with '-'), an
// optional RFC 3463 enhanced status code, and free text. It tolerates
// the real-world format mess the paper documents in Appendix B.
func Parse(line string) Parsed {
	var p Parsed
	s := strings.TrimSpace(line)
	if len(s) >= 3 {
		if n, err := strconv.Atoi(s[:3]); err == nil && n >= 200 && n < 600 {
			p.Code = mail.ReplyCode(n)
			s = s[3:]
			// "550-5.1.1 ..." or "550 5.1.1 ..." or "550 ...".
			if len(s) > 0 && (s[0] == '-' || s[0] == ' ') {
				s = s[1:]
			}
		}
	}
	// Try the first whitespace-delimited token as an enhanced code.
	rest := s
	if i := strings.IndexByte(s, ' '); i > 0 {
		if e, ok := mail.ParseEnhancedCode(s[:i]); ok {
			p.Enh = e
			rest = s[i+1:]
		}
	} else if e, ok := mail.ParseEnhancedCode(s); ok {
		p.Enh = e
		rest = ""
	}
	p.Text = strings.TrimSpace(rest)
	return p
}

// HasEnhancedCode reports whether the raw line carries an enhanced
// status code, used to reproduce the paper's 28.79% statistic.
func HasEnhancedCode(line string) bool {
	return !Parse(line).Enh.IsZero()
}
