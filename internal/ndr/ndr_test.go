package ndr

import (
	"strings"
	"testing"

	"repro/internal/mail"
)

func TestEveryTypeHasTemplates(t *testing.T) {
	for _, typ := range AllTypes {
		if len(TemplatesFor(typ)) == 0 {
			t.Errorf("%v has no templates", typ)
		}
	}
}

func TestCatalogConsistency(t *testing.T) {
	for i, tp := range Catalog {
		if tp.Weight <= 0 {
			t.Errorf("template %d has non-positive weight", i)
		}
		if tp.Type == TNone {
			t.Errorf("template %d has no type", i)
		}
		// The rendered prefix must match the declared reply code.
		prefix := tp.Text[:3]
		if got := string(rune('0'+int(tp.Code)/100)) + string(rune('0'+int(tp.Code)/10%10)) + string(rune('0'+int(tp.Code)%10)); got != prefix {
			t.Errorf("template %d: text prefix %q != code %d", i, prefix, tp.Code)
		}
		// Declared enhanced code must appear in the text (when set).
		if !tp.Enh.IsZero() && !strings.Contains(tp.Text, tp.Enh.String()) {
			t.Errorf("template %d: enh %v not in text %q", i, tp.Enh, tp.Text)
		}
		if tp.Ambiguous && tp.Type != T16Unknown {
			t.Errorf("template %d: ambiguous templates must be typed T16", i)
		}
	}
}

func TestPaperQuotedTemplatesPresent(t *testing.T) {
	// Strings the paper quotes verbatim must exist in the catalog.
	quotes := []string{
		"The email account that you tried to reach is over quota",
		"This message does not pass authentication checks (SPF and DKIM both do not pass)",
		"fails to pass authentication checks (SPF or DKIM)",
		"is not accepted due to domain's DMARC policy",
		"Email address could not be found, or was misspelled",
		"blocked using",
		"Recipient address rejected: Access denied. AS(201806281)",
		"Message rejected due to local policy",
		"Mail is rejected by recipients",
		"Not allowed.(CONNECT)",
		"Relay access denied",
		"This message is not RFC 5322 compliant",
		"Intrusion prevention active for",
		"has exceeded his/her disk space limit",
	}
	for _, q := range quotes {
		found := false
		for _, tp := range Catalog {
			if strings.Contains(tp.Text, q) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("paper-quoted template missing: %q", q)
		}
	}
}

func TestRenderSubstitution(t *testing.T) {
	idx := TemplatesFor(T8NoSuchUser)[0]
	tp := Catalog[idx]
	got := tp.Render(Params{Addr: "bob@b.com", Vendor: "x17"})
	if strings.Contains(got, "{") {
		t.Errorf("unsubstituted placeholder in %q", got)
	}
	if !strings.Contains(got, "bob@b.com") {
		t.Errorf("address missing from %q", got)
	}
}

func TestAmbiguousTemplates(t *testing.T) {
	amb := AmbiguousTemplates()
	if len(amb) != 5 {
		t.Errorf("want the 5 Table-6 templates, got %d", len(amb))
	}
	// The dominant ambiguous template (76.99% in Table 6) is Access denied.
	var maxW float64
	var maxText string
	for _, i := range amb {
		if Catalog[i].Weight > maxW {
			maxW = Catalog[i].Weight
			maxText = Catalog[i].Text
		}
	}
	if !strings.Contains(maxText, "Access denied. AS(201806281)") {
		t.Errorf("dominant ambiguous template is %q", maxText)
	}
}

func TestNonAmbiguousTemplatesFor(t *testing.T) {
	for _, i := range NonAmbiguousTemplatesFor(T16Unknown) {
		if Catalog[i].Ambiguous {
			t.Errorf("template %d should be non-ambiguous", i)
		}
	}
	if len(NonAmbiguousTemplatesFor(T8NoSuchUser)) != len(TemplatesFor(T8NoSuchUser)) {
		t.Error("T8 has no ambiguous templates; lists should match")
	}
}

func TestTypeStringsAndCategories(t *testing.T) {
	if T5Blocklisted.String() != "T5" || T16Unknown.String() != "T16" || TNone.String() != "T0" {
		t.Error("Type.String mismatch")
	}
	cases := map[Type]Category{
		T1SenderDNS:     CatDNSFailure,
		T2ReceiverDNS:   CatDNSFailure,
		T3AuthFail:      CatProtocolViolation,
		T4STARTTLS:      CatProtocolViolation,
		T5Blocklisted:   CatRestrictSource,
		T6Greylisted:    CatRestrictSource,
		T7TooFast:       CatRestrictSource,
		T8NoSuchUser:    CatRefuseReception,
		T9MailboxFull:   CatRefuseReception,
		T10TooManyRcpts: CatRefuseReception,
		T11RateLimited:  CatRefuseReception,
		T12TooLarge:     CatRefuseReception,
		T13ContentSpam:  CatRefuseReception,
		T14Timeout:      CatConnectionError,
		T15Interrupted:  CatConnectionError,
		T16Unknown:      CatUnknown,
	}
	for typ, want := range cases {
		if got := typ.Category(); got != want {
			t.Errorf("%v.Category() = %v want %v", typ, got, want)
		}
	}
	for _, typ := range AllTypes {
		if typ.Description() == "" || typ.Category().String() == "" {
			t.Errorf("%v missing description/category name", typ)
		}
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in       string
		code     mail.ReplyCode
		enh      mail.EnhancedCode
		textPart string
	}{
		{"550-5.1.1 bob@b.com not found", 550, mail.EnhBadMailbox, "bob@b.com not found"},
		{"550 5.1.1 user unknown", 550, mail.EnhBadMailbox, "user unknown"},
		{"452-4.2.2 The email account that you tried to reach is over quota", 452, mail.EnhMailboxFull, "over quota"},
		{"250 OK", 250, mail.EnhancedCode{}, "OK"},
		{"554 Service unavailable; Client host [1.2.3.4] blocked using Spamhaus", 554, mail.EnhancedCode{}, "blocked using Spamhaus"},
		{"no code at all", 0, mail.EnhancedCode{}, "no code at all"},
		{"421 4.4.1 [internal] Connection timed out", 421, mail.EnhNetworkError, "timed out"},
	}
	for _, c := range cases {
		p := Parse(c.in)
		if p.Code != c.code {
			t.Errorf("Parse(%q).Code = %d want %d", c.in, p.Code, c.code)
		}
		if p.Enh != c.enh {
			t.Errorf("Parse(%q).Enh = %v want %v", c.in, p.Enh, c.enh)
		}
		if !strings.Contains(p.Text, c.textPart) {
			t.Errorf("Parse(%q).Text = %q missing %q", c.in, p.Text, c.textPart)
		}
	}
}

func TestParseClassifiers(t *testing.T) {
	if !Parse("250 2.0.0 OK").Success() {
		t.Error("250 should be success")
	}
	if !Parse("450 4.7.1 Greylisted").Temporary() {
		t.Error("450 should be temporary")
	}
	if Parse("550 5.1.1 no user").Temporary() || Parse("550 5.1.1 no user").Success() {
		t.Error("550 misclassified")
	}
}

func TestHasEnhancedCode(t *testing.T) {
	if !HasEnhancedCode("550-5.1.1 user unknown") {
		t.Error("should detect enhanced code")
	}
	if HasEnhancedCode("550 No such user here") {
		t.Error("no enhanced code present")
	}
}

func TestRenderAllTemplatesNoLeftoverPlaceholders(t *testing.T) {
	p := Params{
		Addr: "a@b.com", Local: "a", Domain: "b.com", IP: "1.2.3.4",
		MX: "mx.b.com", BL: "Spamhaus", Vendor: "v123", Sec: "300", Size: "10485760",
	}
	for i := range Catalog {
		out := Catalog[i].Render(p)
		if strings.ContainsAny(out, "{}") {
			t.Errorf("template %d: leftover placeholder in %q", i, out)
		}
	}
}

func TestRenderedParseRoundTrip(t *testing.T) {
	// Parsing a rendered template must recover the declared code and
	// enhanced code for every catalog entry.
	p := Params{Addr: "a@b.com", Local: "a", Domain: "b.com", IP: "1.2.3.4",
		MX: "mx.b.com", BL: "Spamhaus", Vendor: "v1", Sec: "300", Size: "1000"}
	for i, tp := range Catalog {
		parsed := Parse(tp.Render(p))
		if parsed.Code != tp.Code {
			t.Errorf("template %d: parsed code %d want %d", i, parsed.Code, tp.Code)
		}
		if parsed.Enh != tp.Enh {
			t.Errorf("template %d: parsed enh %v want %v (text %q)", i, parsed.Enh, tp.Enh, tp.Text)
		}
	}
}

func TestRenderSuccess(t *testing.T) {
	s := RenderSuccess(1, Params{Vendor: "q99", Domain: "b.com"})
	if !strings.HasPrefix(s, "250") {
		t.Errorf("success reply %q", s)
	}
	if strings.Contains(s, "{") {
		t.Errorf("placeholder left in %q", s)
	}
	// Negative index must not panic.
	_ = RenderSuccess(-3, Params{})
}

func TestSoft(t *testing.T) {
	for _, i := range TemplatesFor(T6Greylisted) {
		if !Catalog[i].Soft() {
			t.Errorf("greylist template %d should be soft (4xx)", i)
		}
	}
	hard := 0
	for _, i := range TemplatesFor(T8NoSuchUser) {
		if !Catalog[i].Soft() {
			hard++
		}
	}
	if hard != len(TemplatesFor(T8NoSuchUser)) {
		t.Error("all T8 templates should be permanent (5xx)")
	}
}
