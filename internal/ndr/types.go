// Package ndr models non-delivery report messages: the 16 bounce-reason
// types the paper defines (Section 3.2), a catalog of per-ESP NDR
// template dialects (including the ambiguous Table-6 templates and the
// 28.79% of messages that omit enhanced status codes), rendering with
// vendor-code noise, and parsing. The NDR text is the ONLY signal the
// classification pipeline gets — exactly the paper's setting.
package ndr

// Type is one of the paper's 16 bounce-reason types T1–T16.
type Type int

// Bounce-reason types, following Section 3.2 of the paper.
const (
	TNone           Type = iota // delivery succeeded / no NDR
	T1SenderDNS                 // T1: sender domain DNS resolution failed
	T2ReceiverDNS               // T2: receiver domain DNS resolution failed
	T3AuthFail                  // T3: DKIM/SPF/DMARC verification failed
	T4STARTTLS                  // T4: sender MTA STARTTLS problem
	T5Blocklisted               // T5: sender MTA listed in blocklists
	T6Greylisted                // T6: blocked by greylisting
	T7TooFast                   // T7: sender delivering too fast
	T8NoSuchUser                // T8: receiver address does not exist
	T9MailboxFull               // T9: receiver mailbox is full
	T10TooManyRcpts             // T10: excessive (invalid) recipient count
	T11RateLimited              // T11: incoming volume/rate exceeds limit
	T12TooLarge                 // T12: email too large
	T13ContentSpam              // T13: content considered spam
	T14Timeout                  // T14: SMTP session timeout
	T15Interrupted              // T15: SMTP session interruption
	T16Unknown                  // T16: unknown / other
)

// NumTypes is the count of real types (T1..T16).
const NumTypes = 16

// AllTypes lists T1..T16 in order.
var AllTypes = []Type{
	T1SenderDNS, T2ReceiverDNS, T3AuthFail, T4STARTTLS, T5Blocklisted,
	T6Greylisted, T7TooFast, T8NoSuchUser, T9MailboxFull, T10TooManyRcpts,
	T11RateLimited, T12TooLarge, T13ContentSpam, T14Timeout,
	T15Interrupted, T16Unknown,
}

// String returns the paper's short label (T1..T16).
func (t Type) String() string {
	if t == TNone {
		return "T0"
	}
	labels := [...]string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8",
		"T9", "T10", "T11", "T12", "T13", "T14", "T15", "T16"}
	if int(t) >= 1 && int(t) <= NumTypes {
		return labels[t-1]
	}
	return "T?"
}

// Description returns the human-readable reason.
func (t Type) Description() string {
	switch t {
	case T1SenderDNS:
		return "sender domain DNS resolution failed"
	case T2ReceiverDNS:
		return "receiver domain DNS resolution failed"
	case T3AuthFail:
		return "sender authentication (DKIM/SPF/DMARC) failed"
	case T4STARTTLS:
		return "STARTTLS required or misimplemented"
	case T5Blocklisted:
		return "sender MTA listed in blocklists"
	case T6Greylisted:
		return "blocked by greylisting"
	case T7TooFast:
		return "sender delivering too fast"
	case T8NoSuchUser:
		return "receiver email address does not exist"
	case T9MailboxFull:
		return "receiver mailbox is full"
	case T10TooManyRcpts:
		return "too many (invalid) recipients"
	case T11RateLimited:
		return "incoming email number/rate exceeds limit"
	case T12TooLarge:
		return "email too large"
	case T13ContentSpam:
		return "email content considered spam"
	case T14Timeout:
		return "SMTP session timeout"
	case T15Interrupted:
		return "SMTP session interruption"
	case T16Unknown:
		return "unknown / other"
	default:
		return "no bounce"
	}
}

// Category is one of the six reason categories of Section 3.2.
type Category int

// Categories.
const (
	CatNone Category = iota
	CatDNSFailure
	CatProtocolViolation
	CatRestrictSource
	CatRefuseReception
	CatConnectionError
	CatUnknown
)

// String returns the paper's category name.
func (c Category) String() string {
	switch c {
	case CatDNSFailure:
		return "DNS query failure"
	case CatProtocolViolation:
		return "Violate protocol standard"
	case CatRestrictSource:
		return "Restrict email source"
	case CatRefuseReception:
		return "Refuse email reception"
	case CatConnectionError:
		return "SMTP connection error"
	case CatUnknown:
		return "Unknown/other"
	default:
		return "none"
	}
}

// Category maps a type to its category per the paper's taxonomy.
func (t Type) Category() Category {
	switch t {
	case T1SenderDNS, T2ReceiverDNS:
		return CatDNSFailure
	case T3AuthFail, T4STARTTLS:
		return CatProtocolViolation
	case T5Blocklisted, T6Greylisted, T7TooFast:
		return CatRestrictSource
	case T8NoSuchUser, T9MailboxFull, T10TooManyRcpts, T11RateLimited,
		T12TooLarge, T13ContentSpam:
		return CatRefuseReception
	case T14Timeout, T15Interrupted:
		return CatConnectionError
	case T16Unknown:
		return CatUnknown
	default:
		return CatNone
	}
}
