package drain

import (
	"fmt"
	"testing"
)

func benchLines(n int) []string {
	out := make([]string, n)
	for i := range out {
		switch i % 3 {
		case 0:
			out[i] = fmt.Sprintf("550 5.1.1 user u%d not found in directory", i)
		case 1:
			out[i] = fmt.Sprintf("452 4.2.2 mailbox m%d over quota limit reached", i)
		default:
			out[i] = fmt.Sprintf("421 4.4.1 connection to host%d timed out after wait", i)
		}
	}
	return out
}

func BenchmarkTrain(b *testing.B) {
	lines := benchLines(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := New(DefaultConfig())
		for _, l := range lines {
			p.Train(l)
		}
	}
}

func BenchmarkTrainPerLine(b *testing.B) {
	lines := benchLines(1000)
	p := New(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Train(lines[i%len(lines)])
	}
}

func BenchmarkMatch(b *testing.B) {
	lines := benchLines(1000)
	p := New(DefaultConfig())
	for _, l := range lines {
		p.Train(l)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Match(lines[i%len(lines)]) == nil {
			b.Fatal("no match")
		}
	}
}
