package drain

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestAppendFieldsMatchesStringsFields pins the zero-alloc tokenizer to
// strings.Fields semantics byte for byte — template mining and matching
// both key on these boundaries.
func TestAppendFieldsMatchesStringsFields(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"one",
		"  leading and trailing  ",
		"550 5.1.1 User unknown: no such user",
		"tab\tseparated\tand\nnewlines\r\nmixed",
		"\v\fvertical form feeds\v",
		"unicode nbsp and line-sep fields", // non-ASCII spaces
		"nextline math-space",
		"café résumé", // non-space multibyte runes
		"emoji \U0001f600 in the middle",
		"broken\xff\xfeutf8 bytes",
		strings.Repeat("x ", 300),
	}
	for _, in := range cases {
		want := strings.Fields(in)
		got := appendFields(nil, in)
		// strings.Fields returns an empty slice for all-space input;
		// appendFields leaves dst (nil here) untouched. Only boundary
		// content matters to callers.
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("appendFields(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAppendFieldsReusesBuffer(t *testing.T) {
	buf := make([]string, 0, 16)
	out := appendFields(buf[:0], "a b c")
	if len(out) != 3 || &out[0] != &buf[:1][0] {
		t.Fatal("appendFields did not write into the provided buffer")
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = appendFields(buf[:0], "550 5.1.1 user unknown at host example.com")
	})
	if allocs != 0 {
		t.Fatalf("appendFields allocated %.1f times per call, want 0", allocs)
	}
}

// TestMatcherEquivalence: a Matcher over a frozen parser returns the
// same group as Parser.Match for every line, with zero allocations.
func TestMatcherEquivalence(t *testing.T) {
	p := New(Config{})
	lines := make([]string, 0, 200)
	for i := 0; i < 100; i++ {
		lines = append(lines,
			fmt.Sprintf("550 5.1.1 user u%d unknown at host%d.example.com", i, i%7),
			fmt.Sprintf("451 4.7.1 greylisted try again in %d seconds", i*13),
		)
	}
	for _, l := range lines {
		p.Train(l)
	}
	p.Freeze()
	m := p.Matcher()
	for _, l := range lines {
		if got, want := m.Match(l), p.Match(l); got != want {
			t.Fatalf("Matcher.Match(%q) = %v, Parser.Match = %v", l, got, want)
		}
	}
	if g := m.Match("completely unrelated words without any cluster"); g != nil {
		t.Fatalf("unrelated line matched group %d", g.ID)
	}
	allocs := testing.AllocsPerRun(100, func() {
		m.Match(lines[0])
	})
	if allocs != 0 {
		t.Fatalf("Matcher.Match allocated %.1f times per call, want 0", allocs)
	}
}

func TestMatcherPanicsUnfrozen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Matcher on unfrozen parser did not panic")
		}
	}()
	New(Config{}).Matcher()
}
