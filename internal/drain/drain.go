// Package drain implements the Drain online log-template miner
// (He, Zhu, Zheng, Lyu — "Drain: An Online Log Parsing Approach with
// Fixed Depth Tree", ICWS 2017), which the paper applies to cluster 190M
// NDR messages into 10,089 templates (Section 3.2). Messages are routed
// through a fixed-depth prefix tree (first by token count, then by their
// leading tokens) to a leaf holding candidate groups; a message joins
// the most similar group above a threshold, updating the group template
// by wildcarding the positions that differ, or founds a new group.
package drain

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"
)

// Wildcard is the placeholder for variable template positions. The
// paper renders templates with "(.*)"; we follow it.
const Wildcard = "(.*)"

// Config tunes the parse tree.
type Config struct {
	// Depth is the total tree depth including the root and length
	// layers; Depth-2 token layers route on the first Depth-2 tokens.
	Depth int
	// SimThreshold is the minimum token-level similarity for a message
	// to join an existing group.
	SimThreshold float64
	// MaxChildren caps the branching factor of each internal node;
	// overflow tokens route through a shared wildcard child.
	MaxChildren int
}

// DefaultConfig returns the parameters from the Drain paper (depth 4,
// similarity 0.4, 100 children).
func DefaultConfig() Config {
	return Config{Depth: 4, SimThreshold: 0.4, MaxChildren: 100}
}

// Group is one mined template cluster.
type Group struct {
	ID     int
	Count  int // messages absorbed
	tokens []string
}

// Template renders the group's template with wildcards.
func (g *Group) Template() string { return strings.Join(g.tokens, " ") }

// Tokens returns a copy of the template tokens.
func (g *Group) Tokens() []string {
	out := make([]string, len(g.tokens))
	copy(out, g.tokens)
	return out
}

type node struct {
	children map[string]*node
	groups   []*Group // only at leaves
}

// Parser is the Drain miner. It is safe for concurrent use. A parser
// that has stopped training can be Frozen, which lets Match and Groups
// skip the mutex entirely.
type Parser struct {
	cfg Config

	mu     sync.Mutex
	root   *node // first layer: token-count key
	groups []*Group
	nextID int
	frozen bool
	fp     uint64   // structural fingerprint, see Fingerprint
	tokBuf []string // tokenization scratch, used under mu only
}

// New creates a parser; zero-value config fields fall back to defaults.
func New(cfg Config) *Parser {
	def := DefaultConfig()
	if cfg.Depth < 3 {
		cfg.Depth = def.Depth
	}
	if cfg.SimThreshold <= 0 || cfg.SimThreshold >= 1 {
		cfg.SimThreshold = def.SimThreshold
	}
	if cfg.MaxChildren <= 0 {
		cfg.MaxChildren = def.MaxChildren
	}
	return &Parser{cfg: cfg, root: &node{children: map[string]*node{}}, fp: fnvOffset64}
}

// FNV-1a constants for the structural fingerprint.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func (p *Parser) mixByte(b byte) { p.fp = (p.fp ^ uint64(b)) * fnvPrime64 }

func (p *Parser) mixInt(v int) {
	for i := 0; i < 8; i++ {
		p.mixByte(byte(v >> (8 * i)))
	}
}

func (p *Parser) mixString(s string) {
	for i := 0; i < len(s); i++ {
		p.mixByte(s[i])
	}
	p.mixByte(0xff) // terminator so "ab","c" ≠ "a","bc"
}

// Fingerprint identifies the parser's match-relevant structure: it is
// a chain over every structural mutation — group foundings (with their
// token sequence) and template positions wildcarded — in order. Count
// increments do not change it, because Match routes on the tree and
// templates only: two parsers with equal fingerprints (same lineage)
// return the same group for every line. Snapshot invalidation in
// analysis.Incremental keys on this.
func (p *Parser) Fingerprint() uint64 {
	if p.frozen {
		return p.fp
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fp
}

// Freeze marks the parser immutable: Train panics afterwards, and
// Match, Groups, and Fingerprint stop taking the mutex — the lock-free
// read path parallel classification depends on. Freeze must
// happen-before any lock-free reader (publish the parser through a
// channel, mutex, or goroutine start).
func (p *Parser) Freeze() {
	p.mu.Lock()
	p.frozen = true
	p.mu.Unlock()
}

// hasDigit reports whether a token contains a digit; such tokens are
// treated as variables during routing (Drain's preprocessing step).
func hasDigit(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			return true
		}
	}
	return false
}

// asciiSpace marks the bytes unicode.IsSpace reports in ASCII range —
// the same table strings.Fields keys its fast path on.
var asciiSpace = [256]uint8{'\t': 1, '\n': 1, '\v': 1, '\f': 1, '\r': 1, ' ': 1}

// appendFields appends the fields of line to dst and returns it —
// strings.Fields with a caller-owned buffer, so the per-line []string
// allocation on the match hot path disappears. Field boundaries are
// identical to strings.Fields (unicode.IsSpace separators, including
// non-ASCII spaces like U+00A0): the returned tokens are substrings of
// line in order.
func appendFields(dst []string, line string) []string {
	start := -1 // field start, or -1 between fields
	i := 0
	for i < len(line) {
		if c := line[i]; c < utf8.RuneSelf {
			if asciiSpace[c] == 1 {
				if start >= 0 {
					dst = append(dst, line[start:i])
					start = -1
				}
			} else if start < 0 {
				start = i
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(line[i:])
		if unicode.IsSpace(r) {
			if start >= 0 {
				dst = append(dst, line[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
		i += size
	}
	if start >= 0 {
		dst = append(dst, line[start:])
	}
	return dst
}

// routeKey returns the routing key for a token at an internal layer.
func (p *Parser) routeKey(tok string) string {
	if hasDigit(tok) {
		return Wildcard
	}
	return tok
}

// leafFor walks (and on insert, builds) the path for the token sequence.
func (p *Parser) leafFor(tokens []string, insert bool) *node {
	lenKey := lengthKey(len(tokens))
	cur, ok := p.root.children[lenKey]
	if !ok {
		if !insert {
			return nil
		}
		cur = &node{children: map[string]*node{}}
		p.root.children[lenKey] = cur
	}
	layers := p.cfg.Depth - 2
	for i := 0; i < layers; i++ {
		if i >= len(tokens) {
			break
		}
		key := p.routeKey(tokens[i])
		next, ok := cur.children[key]
		if !ok {
			if !insert {
				// Fall back to the wildcard child when matching only.
				if wc, ok := cur.children[Wildcard]; ok {
					cur = wc
					continue
				}
				return nil
			}
			if len(cur.children) >= p.cfg.MaxChildren {
				key = Wildcard
				if wc, ok := cur.children[Wildcard]; ok {
					cur = wc
					continue
				}
			}
			next = &node{children: map[string]*node{}}
			cur.children[key] = next
		}
		cur = next
	}
	return cur
}

// lengthKeys caches the first-layer routing keys for common token
// counts; building "len:N" per line was the last allocation on the
// zero-alloc match path.
var lengthKeys = func() (ks [128]string) {
	for n := range ks {
		ks[n] = "len:" + strconv.Itoa(n)
	}
	return
}()

func lengthKey(n int) string {
	if n >= 0 && n < len(lengthKeys) {
		return lengthKeys[n]
	}
	return "len:" + strconv.Itoa(n)
}

// similarity is Drain's simSeq: fraction of positions whose tokens match
// (wildcard template positions count as matches).
func similarity(tmpl, tokens []string) float64 {
	if len(tmpl) != len(tokens) || len(tmpl) == 0 {
		return 0
	}
	same := 0
	for i := range tmpl {
		if tmpl[i] == tokens[i] || tmpl[i] == Wildcard {
			same++
		}
	}
	return float64(same) / float64(len(tmpl))
}

// Train absorbs one log line and returns the group it joined (or
// founded). Tokenization reuses the parser's scratch buffer under the
// lock, so a training call allocates only when it founds a group.
func (p *Parser) Train(line string) *Group {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.frozen {
		panic("drain: Train on frozen parser")
	}
	p.tokBuf = appendFields(p.tokBuf[:0], line)
	tokens := p.tokBuf
	leaf := p.leafFor(tokens, true)

	var best *Group
	bestSim := 0.0
	for _, g := range leaf.groups {
		if s := similarity(g.tokens, tokens); s > bestSim {
			best, bestSim = g, s
		}
	}
	if best != nil && bestSim >= p.cfg.SimThreshold {
		// Merge: wildcard the differing positions.
		for i := range best.tokens {
			if best.tokens[i] != tokens[i] && best.tokens[i] != Wildcard {
				best.tokens[i] = Wildcard
				p.mixInt(best.ID)
				p.mixInt(i)
			}
		}
		best.Count++
		return best
	}
	g := &Group{ID: p.nextID, Count: 1, tokens: append([]string(nil), tokens...)}
	p.nextID++
	leaf.groups = append(leaf.groups, g)
	p.groups = append(p.groups, g)
	p.mixInt(g.ID)
	for _, tok := range tokens {
		p.mixString(tok)
	}
	return g
}

// Match routes a line to its group without updating any state. It
// returns nil when no group is similar enough. On a frozen parser the
// call is lock-free but allocates a token slice per line; batch callers
// should hold a Matcher instead.
func (p *Parser) Match(line string) *Group {
	if p.frozen {
		return p.matchTokens(appendFields(nil, line))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tokBuf = appendFields(p.tokBuf[:0], line)
	return p.matchTokens(p.tokBuf)
}

// matchTokens is Match over pre-split tokens. Callers either hold p.mu
// or operate on a frozen parser.
func (p *Parser) matchTokens(tokens []string) *Group {
	leaf := p.leafFor(tokens, false)
	if leaf == nil {
		return nil
	}
	var best *Group
	bestSim := 0.0
	for _, g := range leaf.groups {
		if s := similarity(g.tokens, tokens); s > bestSim {
			best, bestSim = g, s
		}
	}
	if best == nil || bestSim < p.cfg.SimThreshold {
		return nil
	}
	return best
}

// Matcher is a single-goroutine match context over a frozen parser: it
// owns a reusable token buffer, so repeated Match calls are zero-alloc
// over the lock-free tree. Create one per classification worker.
type Matcher struct {
	p    *Parser
	toks []string
}

// Matcher returns a zero-alloc match context. The parser must be
// frozen: the matcher reads the tree without the mutex.
func (p *Parser) Matcher() *Matcher {
	if !p.frozen {
		panic("drain: Matcher on unfrozen parser")
	}
	return &Matcher{p: p}
}

// Match routes a line to its group, reusing the matcher's token buffer.
func (m *Matcher) Match(line string) *Group {
	m.toks = appendFields(m.toks[:0], line)
	return m.p.matchTokens(m.toks)
}

// Clone returns a deep copy of the parser: the clone and the original
// share no mutable state, so one can keep training while the other is
// frozen for a point-in-time snapshot (the online report path). Group
// IDs, counts, and template tokens are preserved exactly, which keeps
// a clone's classifications identical to the original's at clone time.
// The clone is unfrozen (trainable) regardless of the original's state,
// and inherits the structural fingerprint.
func (p *Parser) Clone() *Parser {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := &Parser{cfg: p.cfg, nextID: p.nextID, fp: p.fp}
	copies := make(map[*Group]*Group, len(p.groups))
	q.groups = make([]*Group, len(p.groups))
	for i, g := range p.groups {
		ng := &Group{ID: g.ID, Count: g.Count, tokens: append([]string(nil), g.tokens...)}
		copies[g] = ng
		q.groups[i] = ng
	}
	q.root = cloneNode(p.root, copies)
	return q
}

func cloneNode(n *node, copies map[*Group]*Group) *node {
	out := &node{children: make(map[string]*node, len(n.children))}
	for key, child := range n.children {
		out.children[key] = cloneNode(child, copies)
	}
	if len(n.groups) > 0 {
		out.groups = make([]*Group, len(n.groups))
		for i, g := range n.groups {
			out.groups[i] = copies[g]
		}
	}
	return out
}

// Groups returns all groups ordered by descending count (the paper's
// template ranking for manual labeling), ties broken by ID.
func (p *Parser) Groups() []*Group {
	if !p.frozen {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	out := make([]*Group, len(p.groups))
	copy(out, p.groups)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// NumGroups returns the number of mined templates.
func (p *Parser) NumGroups() int {
	if !p.frozen {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	return len(p.groups)
}
