package drain

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ndr"
)

func TestSameShapeMessagesMerge(t *testing.T) {
	p := New(DefaultConfig())
	p.Train("550 5.1.1 user alice not found")
	p.Train("550 5.1.1 user bob not found")
	p.Train("550 5.1.1 user carol not found")
	if n := p.NumGroups(); n != 1 {
		t.Fatalf("groups = %d want 1", n)
	}
	g := p.Groups()[0]
	if g.Count != 3 {
		t.Errorf("count = %d", g.Count)
	}
	tmpl := g.Template()
	if !strings.Contains(tmpl, Wildcard) {
		t.Errorf("template lacks wildcard: %q", tmpl)
	}
	if !strings.Contains(tmpl, "not found") {
		t.Errorf("template lost constant part: %q", tmpl)
	}
}

func TestDifferentLengthsNeverMerge(t *testing.T) {
	p := New(DefaultConfig())
	p.Train("550 user unknown")
	p.Train("550 user unknown here today")
	if n := p.NumGroups(); n != 2 {
		t.Errorf("groups = %d want 2 (length layer separates)", n)
	}
}

func TestDissimilarMessagesSeparate(t *testing.T) {
	p := New(DefaultConfig())
	p.Train("550 mailbox full quota exceeded")
	p.Train("421 connection timed out talking")
	if n := p.NumGroups(); n != 2 {
		t.Errorf("groups = %d want 2", n)
	}
}

func TestDigitTokensRouteAsWildcard(t *testing.T) {
	// Messages identical except for a digit-bearing token in the routing
	// prefix must land in one group (the preprocessing step).
	p := New(DefaultConfig())
	p.Train("ip 1.2.3.4 blocked using Spamhaus")
	p.Train("ip 5.6.7.8 blocked using Spamhaus")
	if n := p.NumGroups(); n != 1 {
		t.Errorf("groups = %d want 1", n)
	}
}

func TestMatchDoesNotMutate(t *testing.T) {
	p := New(DefaultConfig())
	p.Train("550 user alice not found")
	p.Train("550 user bob not found")
	before := p.Groups()[0].Count
	g := p.Match("550 user zed not found")
	if g == nil {
		t.Fatal("Match failed to route")
	}
	if p.Groups()[0].Count != before {
		t.Error("Match mutated group count")
	}
	if p.Match("completely unrelated line with many many tokens") != nil {
		t.Error("Match invented a group for unseen shape")
	}
}

func TestGroupsSortedByCount(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		p.Train(fmt.Sprintf("452 mailbox %c over quota", 'a'+i))
	}
	p.Train("421 totally different line")
	gs := p.Groups()
	if gs[0].Count < gs[len(gs)-1].Count {
		t.Error("groups not sorted by count")
	}
	if gs[0].Count != 5 {
		t.Errorf("top group count %d want 5", gs[0].Count)
	}
}

func TestMaxChildrenOverflowUsesWildcard(t *testing.T) {
	p := New(Config{Depth: 4, SimThreshold: 0.4, MaxChildren: 3})
	// 10 distinct first tokens exceed MaxChildren=3; overflow shares the
	// wildcard child instead of exploding the tree.
	for i := 0; i < 10; i++ {
		p.Train(fmt.Sprintf("tok%c same tail tokens here", 'a'+i))
	}
	if p.NumGroups() > 10 {
		t.Errorf("groups = %d", p.NumGroups())
	}
	// All trained lines must still Match.
	if p.Match("toka same tail tokens here") == nil {
		t.Error("pre-overflow line unmatched")
	}
	if p.Match("tokz same tail tokens here") == nil {
		t.Error("overflow-path line unmatched")
	}
}

func TestTokensReturnsCopy(t *testing.T) {
	p := New(DefaultConfig())
	g := p.Train("550 user alice not found")
	toks := g.Tokens()
	toks[0] = "mutated"
	if g.Template()[:3] != "550" {
		t.Error("Tokens() leaked internal slice")
	}
}

func TestNDRCorpusClustersToCatalogScale(t *testing.T) {
	// Rendering every catalog template with varying parameters must
	// yield roughly one Drain group per catalog template — the mining
	// step the paper's pipeline depends on.
	p := New(DefaultConfig())
	for round := 0; round < 50; round++ {
		for i := range ndr.Catalog {
			params := ndr.Params{
				Addr:   fmt.Sprintf("user%d@dom%d.com", round, round),
				Local:  fmt.Sprintf("user%d", round),
				Domain: fmt.Sprintf("dom%d.com", round),
				IP:     fmt.Sprintf("9.%d.%d.7", round%250, (round*3)%250),
				MX:     fmt.Sprintf("mx%d.dom%d.com", round%3, round),
				BL:     "Spamhaus",
				Vendor: fmt.Sprintf("v%d-%d", round, i),
				Sec:    "300",
				Size:   "10485760",
			}
			p.Train(ndr.Catalog[i].Render(params))
		}
	}
	n := p.NumGroups()
	if n < len(ndr.Catalog)/2 || n > len(ndr.Catalog)*2 {
		t.Errorf("catalog of %d templates mined into %d groups", len(ndr.Catalog), n)
	}
	// The dominant groups must absorb full rounds.
	if top := p.Groups()[0]; top.Count < 50 {
		t.Errorf("top group count %d want >= 50", top.Count)
	}
}

func TestDefaultsApplied(t *testing.T) {
	p := New(Config{})
	if p.cfg.Depth != 4 || p.cfg.SimThreshold != 0.4 || p.cfg.MaxChildren != 100 {
		t.Errorf("defaults not applied: %+v", p.cfg)
	}
}

func TestSimilarity(t *testing.T) {
	cases := []struct {
		a, b []string
		want float64
	}{
		{[]string{"a", "b"}, []string{"a", "b"}, 1},
		{[]string{"a", Wildcard}, []string{"a", "x"}, 1},
		{[]string{"a", "b"}, []string{"a", "x"}, 0.5},
		{[]string{"a"}, []string{"a", "b"}, 0},
		{nil, nil, 0},
	}
	for _, c := range cases {
		if got := similarity(c.a, c.b); got != c.want {
			t.Errorf("similarity(%v,%v)=%g want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestTrainCountInvariant(t *testing.T) {
	// Property: group counts always sum to the number of trained lines,
	// and every trained line still matches some group.
	f := func(seeds []uint16) bool {
		p := New(DefaultConfig())
		lines := make([]string, 0, len(seeds))
		for _, s := range seeds {
			line := fmt.Sprintf("%d code %d mailbox m%d unavailable", 400+int(s)%200, s%10, s)
			lines = append(lines, line)
			p.Train(line)
		}
		sum := 0
		for _, g := range p.Groups() {
			sum += g.Count
		}
		if sum != len(lines) {
			return false
		}
		for _, l := range lines {
			if p.Match(l) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIsIndependentAndIdentical(t *testing.T) {
	p := New(DefaultConfig())
	lines := []string{
		"550 5.1.1 user alice not found",
		"550 5.1.1 user bob not found",
		"421 4.7.0 try again later",
		"554 5.7.1 message rejected as spam",
	}
	for _, l := range lines {
		p.Train(l)
	}
	q := p.Clone()

	// The clone matches exactly what the original matched at clone time.
	for _, l := range lines {
		pg, qg := p.Match(l), q.Match(l)
		if pg == nil || qg == nil {
			t.Fatalf("Match(%q) lost after clone: orig=%v clone=%v", l, pg, qg)
		}
		if pg.ID != qg.ID || pg.Count != qg.Count || pg.Template() != qg.Template() {
			t.Fatalf("clone group differs for %q: orig{%d %d %q} clone{%d %d %q}",
				l, pg.ID, pg.Count, pg.Template(), qg.ID, qg.Count, qg.Template())
		}
	}

	// Training the original must not leak into the clone, and vice versa.
	p.Train("550 5.2.2 mailbox dave full")
	if p.NumGroups() != q.NumGroups()+1 {
		t.Fatalf("clone group count %d after original trained a new line, want %d", q.NumGroups(), p.NumGroups()-1)
	}
	q.Train("451 4.3.2 system not accepting network messages")
	if g := q.Match("550 5.2.2 mailbox dave full"); g != nil {
		t.Fatalf("clone learned the original's post-clone line: %q", g.Template())
	}
	if g := p.Match("451 4.3.2 system not accepting network messages"); g != nil {
		t.Fatalf("original learned the clone's post-clone line: %q", g.Template())
	}
}
