package drain

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Binary codec for a Parser: the durable-checkpoint path serializes the
// whole match structure — tree, groups, founding order, fingerprint —
// so a restored parser behaves byte-identically to the original, both
// for Match (same leaf routing, same in-leaf candidate order, so the
// same tie-breaks) and for further Train calls (same nextID, same
// wildcard state, same MaxChildren overflow children). The encoding is
// the repo's usual boring kind: varints, length-prefixed strings, and
// map children emitted in sorted key order so equal parsers marshal to
// equal bytes.

const codecVersion = 1

var errCodec = errors.New("drain: truncated or corrupt parser snapshot")

// MarshalBinary serializes the parser. Safe to call concurrently with
// Match on a frozen parser; otherwise it takes the training mutex.
func (p *Parser) MarshalBinary() ([]byte, error) {
	if !p.frozen {
		p.mu.Lock()
		defer p.mu.Unlock()
	}
	e := &penc{}
	e.u8(codecVersion)
	e.uv(uint64(p.cfg.Depth))
	e.f64(p.cfg.SimThreshold)
	e.uv(uint64(p.cfg.MaxChildren))
	e.uv(uint64(p.nextID))
	e.u64(p.fp)

	// Groups in founding order (the order p.groups holds them).
	e.uv(uint64(len(p.groups)))
	for _, g := range p.groups {
		e.uv(uint64(g.ID))
		e.uv(uint64(g.Count))
		e.uv(uint64(len(g.tokens)))
		for _, tok := range g.tokens {
			e.str(tok)
		}
	}
	e.node(p.root)
	return e.buf, nil
}

// UnmarshalParser reconstructs a parser serialized by MarshalBinary.
// The result is unfrozen (trainable), like Clone.
func UnmarshalParser(b []byte) (*Parser, error) {
	d := &pdec{b: b}
	if v := d.u8(); d.err == nil && v != codecVersion {
		return nil, fmt.Errorf("drain: parser snapshot version %d, want %d", v, codecVersion)
	}
	p := &Parser{}
	p.cfg.Depth = int(d.uv())
	p.cfg.SimThreshold = d.f64()
	p.cfg.MaxChildren = int(d.uv())
	p.nextID = int(d.uv())
	p.fp = d.u64()

	n := int(d.uv())
	if d.err == nil && uint64(n) > uint64(len(d.b)) {
		d.err = errCodec
	}
	byID := make(map[int]*Group, n)
	p.groups = make([]*Group, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		g := &Group{ID: int(d.uv()), Count: int(d.uv())}
		nt := int(d.uv())
		if d.err == nil && uint64(nt) > uint64(len(d.b)) {
			d.err = errCodec
			break
		}
		g.tokens = make([]string, 0, nt)
		for j := 0; j < nt; j++ {
			g.tokens = append(g.tokens, d.str())
		}
		byID[g.ID] = g
		p.groups = append(p.groups, g)
	}
	p.root = d.node(byID)
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("drain: %d trailing bytes after parser snapshot", len(d.b))
	}
	return p, nil
}

func (e *penc) node(n *node) {
	keys := make([]string, 0, len(n.children))
	for k := range n.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.uv(uint64(len(keys)))
	for _, k := range keys {
		e.str(k)
		e.node(n.children[k])
	}
	// Leaf candidates in arrival order: Match scans them in order and
	// keeps the first best on similarity ties, so order is structure.
	e.uv(uint64(len(n.groups)))
	for _, g := range n.groups {
		e.uv(uint64(g.ID))
	}
}

func (d *pdec) node(byID map[int]*Group) *node {
	nc := int(d.uv())
	if d.err == nil && uint64(nc) > uint64(len(d.b)) {
		d.err = errCodec
	}
	out := &node{children: make(map[string]*node, nc)}
	for i := 0; i < nc && d.err == nil; i++ {
		k := d.str()
		out.children[k] = d.node(byID)
	}
	ng := int(d.uv())
	if d.err == nil && uint64(ng) > uint64(len(d.b))+1 {
		d.err = errCodec
	}
	for i := 0; i < ng && d.err == nil; i++ {
		g, ok := byID[int(d.uv())]
		if !ok {
			d.err = errCodec
			return out
		}
		out.groups = append(out.groups, g)
	}
	return out
}

// penc / pdec are the minimal varint writer/reader pair (drain cannot
// reach the analysis package's codec without an import cycle).
type penc struct{ buf []byte }

func (e *penc) u8(v byte)     { e.buf = append(e.buf, v) }
func (e *penc) uv(v uint64)   { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *penc) u64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *penc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *penc) str(s string)  { e.uv(uint64(len(s))); e.buf = append(e.buf, s...) }

type pdec struct {
	b   []byte
	err error
}

func (d *pdec) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *pdec) fail() {
	if d.err == nil {
		d.err = errCodec
	}
}

func (d *pdec) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *pdec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *pdec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *pdec) str() string {
	n := d.uv()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}
