package drain

import (
	"fmt"
	"sync"
	"testing"
)

// TestFingerprintStableUnderRepeats: retraining lines the parser has
// already absorbed only bumps counts, so the fingerprint must not move
// — that is what lets snapshot caching survive duplicate traffic.
func TestFingerprintStableUnderRepeats(t *testing.T) {
	p := New(Config{})
	lines := []string{
		"550 user unknown in virtual mailbox table",
		"421 service not available try later",
		"550 user vanished in virtual mailbox table",
	}
	for _, l := range lines {
		p.Train(l)
	}
	fp := p.Fingerprint()
	if fp == fnvOffset64 {
		t.Fatal("fingerprint did not move after founding groups")
	}
	for i := 0; i < 50; i++ {
		p.Train(lines[i%len(lines)])
	}
	if got := p.Fingerprint(); got != fp {
		t.Fatalf("fingerprint changed on count-only training: %x -> %x", fp, got)
	}
	// A structurally new line must change it.
	p.Train("999 something entirely different shape here")
	if got := p.Fingerprint(); got == fp {
		t.Fatal("fingerprint unchanged after founding a new group")
	}
}

// TestFingerprintChangesOnWildcard: absorbing a similar-but-different
// line mutates the template (wildcard merge) and must move the
// fingerprint even though no group was founded.
func TestFingerprintChangesOnWildcard(t *testing.T) {
	p := New(Config{})
	p.Train("550 mailbox alice is full today")
	before := p.NumGroups()
	fp := p.Fingerprint()
	p.Train("550 mailbox bobby is full today")
	if p.NumGroups() != before {
		t.Fatal("expected a merge, not a new group")
	}
	if p.Fingerprint() == fp {
		t.Fatal("fingerprint unchanged after template wildcarding")
	}
}

func TestClonePreservesFingerprint(t *testing.T) {
	p := New(Config{})
	for i := 0; i < 20; i++ {
		p.Train(fmt.Sprintf("550 user u%d unknown on host h%d", i, i%3))
	}
	c := p.Clone()
	if c.Fingerprint() != p.Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	// Diverge the clone; the original must not move.
	fp := p.Fingerprint()
	c.Train("brand new structural shape with many novel tokens")
	if c.Fingerprint() == fp {
		t.Fatal("clone fingerprint did not diverge")
	}
	if p.Fingerprint() != fp {
		t.Fatal("training the clone moved the original's fingerprint")
	}
}

// TestFrozenMatchConcurrent: after Freeze, Match and Groups run
// lock-free; hammer them from several goroutines under -race.
func TestFrozenMatchConcurrent(t *testing.T) {
	p := New(Config{})
	lines := make([]string, 40)
	for i := range lines {
		lines[i] = fmt.Sprintf("550 user u%d unknown on host h%d", i, i%5)
		p.Train(lines[i])
	}
	want := make([]*Group, len(lines))
	for i, l := range lines {
		want[i] = p.Match(l)
	}
	p.Freeze()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				for i, l := range lines {
					if g := p.Match(l); g != want[i] {
						t.Errorf("frozen Match diverged for %q", l)
						return
					}
				}
				p.Groups()
				p.Fingerprint()
			}
		}()
	}
	wg.Wait()
}

func TestTrainOnFrozenPanics(t *testing.T) {
	p := New(Config{})
	p.Train("550 user unknown")
	p.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Train on frozen parser did not panic")
		}
	}()
	p.Train("550 another line")
}
