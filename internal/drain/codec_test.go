package drain

import (
	"bytes"
	"fmt"
	"testing"
)

func trainedParser(t *testing.T, n int) *Parser {
	t.Helper()
	p := New(DefaultConfig())
	for i := 0; i < n; i++ {
		switch i % 5 {
		case 0:
			p.Train(fmt.Sprintf("550 5.1.1 user u%d not found", i))
		case 1:
			p.Train(fmt.Sprintf("421 4.7.0 host %d.%d.%d.%d greylisted try later", i%250, i%200, i%100, i%50))
		case 2:
			p.Train("552 5.2.2 mailbox full quota exceeded")
		case 3:
			p.Train(fmt.Sprintf("451 temporary failure id=%d requeued", i))
		case 4:
			p.Train(fmt.Sprintf("550 listed at zen.spamhaus.org ip %d.0.0.%d", i%9, i%7))
		}
	}
	return p
}

// Round-tripping through the codec must preserve everything Match and
// future Train calls observe: fingerprint, group order and templates,
// and the leaf routing structure.
func TestCodecRoundTrip(t *testing.T) {
	p := trainedParser(t, 500)
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	q, err := UnmarshalParser(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := q.Fingerprint(), p.Fingerprint(); got != want {
		t.Fatalf("fingerprint %x != %x", got, want)
	}
	if q.NumGroups() != p.NumGroups() {
		t.Fatalf("groups %d != %d", q.NumGroups(), p.NumGroups())
	}
	pg, qg := p.Groups(), q.Groups()
	for i := range pg {
		if pg[i].ID != qg[i].ID || pg[i].Count != qg[i].Count || pg[i].Template() != qg[i].Template() {
			t.Fatalf("group %d differs: %+v vs %+v", i, pg[i], qg[i])
		}
	}
	// Matching behaviour is identical for lines the parser has seen and
	// lines it has not.
	probes := []string{
		"550 5.1.1 user zz9 not found",
		"552 5.2.2 mailbox full quota exceeded",
		"421 4.7.0 host 9.9.9.9 greylisted try later",
		"never seen anything like this message before at all",
	}
	for _, line := range probes {
		a, b := p.Match(line), q.Match(line)
		if (a == nil) != (b == nil) {
			t.Fatalf("match presence differs for %q", line)
		}
		if a != nil && a.ID != b.ID {
			t.Fatalf("match group differs for %q: %d vs %d", line, a.ID, b.ID)
		}
	}
}

// A restored parser must keep training exactly like the original: same
// group assignment, same fingerprint evolution, and identical re-marshal
// bytes — the property byte-identical crash recovery rests on.
func TestCodecTrainAfterRestore(t *testing.T) {
	p := trainedParser(t, 300)
	blob, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	q, err := UnmarshalParser(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		line := fmt.Sprintf("554 5.7.1 relay access denied from host%d", i)
		gp, gq := p.Train(line), q.Train(line)
		if gp.ID != gq.ID {
			t.Fatalf("divergence at line %d: group %d vs %d", i, gp.ID, gq.ID)
		}
	}
	if p.Fingerprint() != q.Fingerprint() {
		t.Fatalf("fingerprints diverged after post-restore training")
	}
	bp, _ := p.MarshalBinary()
	bq, _ := q.MarshalBinary()
	if !bytes.Equal(bp, bq) {
		t.Fatal("re-marshal bytes differ after identical training")
	}
}

// Marshal must be deterministic (map iteration order must not leak into
// the bytes) and agree between a parser and its Clone.
func TestCodecDeterministic(t *testing.T) {
	p := trainedParser(t, 400)
	a, _ := p.MarshalBinary()
	for i := 0; i < 5; i++ {
		b, _ := p.MarshalBinary()
		if !bytes.Equal(a, b) {
			t.Fatal("marshal not deterministic")
		}
	}
	c, _ := p.Clone().MarshalBinary()
	if !bytes.Equal(a, c) {
		t.Fatal("clone marshals differently")
	}
	// A frozen parser serializes identically too (and without locking).
	f := p.Clone()
	f.Freeze()
	fb, _ := f.MarshalBinary()
	if !bytes.Equal(a, fb) {
		t.Fatal("frozen parser marshals differently")
	}
}

// Truncated or corrupted snapshots must error, never panic or return a
// half-built parser.
func TestCodecHostileInput(t *testing.T) {
	p := trainedParser(t, 100)
	blob, _ := p.MarshalBinary()
	for cut := 0; cut < len(blob); cut += 7 {
		if _, err := UnmarshalParser(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := UnmarshalParser(append(append([]byte(nil), blob...), 0x01)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = 99
	if _, err := UnmarshalParser(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}
