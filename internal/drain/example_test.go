package drain_test

import (
	"fmt"

	"repro/internal/drain"
)

func ExampleParser() {
	p := drain.New(drain.DefaultConfig())
	p.Train("550 5.1.1 user alice not found")
	p.Train("550 5.1.1 user bob not found")
	p.Train("550 5.1.1 user carol not found")
	g := p.Groups()[0]
	fmt.Println(g.Count, g.Template())
	// Output: 3 550 5.1.1 user (.*) not found
}
