// Package policy implements the receiver-side policy gauntlet — the
// single chain of checks behind all 16 of the paper's bounce types —
// as a composable stage pipeline shared by the bulk delivery engine
// and the live SMTP bridge. Each named Stage inspects one mechanism
// (TLS mandate, DNSBL, greylisting, rate limits, authentication,
// recipient existence, quota, size, content, quirks) and produces a
// unified Verdict; a Chain assembles the stages for one receiver
// domain from its world.Policy, executes them in MTA order, and maps
// them onto SMTP phases (MAIL/RCPT/DATA) for the wire path. Chains
// carry per-stage hit counters and an ablation hook (disable or force
// any stage by name), which turns every T1–T16 mechanism into a
// first-class experiment knob.
package policy

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/dns"
	"repro/internal/mail"
	"repro/internal/ndr"
	"repro/internal/simrng"
	"repro/internal/world"
)

// Phase is the SMTP conversation phase a stage naturally runs at. The
// stage catalog is phase-monotonic (all MAIL stages precede all RCPT
// stages, which precede all DATA stages), so executing the chain
// linearly and executing it phase-by-phase over the wire hit the same
// first rejection.
type Phase int

// SMTP phases, in conversation order.
const (
	PhaseConnect Phase = iota
	PhaseMail
	PhaseRcpt
	PhaseData
)

// String returns the SMTP verb the phase corresponds to.
func (p Phase) String() string {
	switch p {
	case PhaseConnect:
		return "CONNECT"
	case PhaseMail:
		return "MAIL"
	case PhaseRcpt:
		return "RCPT"
	case PhaseData:
		return "DATA"
	}
	return "?"
}

// Request is one delivery attempt as the receiver MTA sees it. The
// bulk engine fills it from the simulated message; the SMTP bridge
// fills it from the live session (leaving Proxy nil when the client is
// not a known proxy MTA, and Tokens empty before DATA).
type Request struct {
	From mail.Address
	To   mail.Address
	// MsgID is the stable token DKIM signatures cover.
	MsgID string
	// ClientIP is the sending MTA's address (DNSBL, greylist, SPF).
	ClientIP string
	// Proxy is the sending proxy MTA when known; nil on wire sessions
	// from unrecognized clients, which skips sender-side simulation
	// details (TLS mandate learning, spamtrap exposure, DKIM signing).
	Proxy *world.ProxyMTA
	// At is the (virtual) instant the attempt happens.
	At time.Time
	// First marks the first attempt of a message: rate-limit windows
	// are consumed by fresh emails only, retries re-test them.
	First bool
	// TLS reports that the session has (or will) negotiate STARTTLS.
	TLS bool
	// SpamFlagged is the sender-side spam classification.
	SpamFlagged bool
	RcptCount   int
	SizeBytes   int
	Tokens      []string
}

// SourceID is a stable small integer identifying the sending MTA for
// rate-limit keys: the proxy ID when known, a hash of the client IP
// otherwise.
func (r *Request) SourceID() int {
	if r.Proxy != nil {
		return r.Proxy.ID
	}
	h := fnv.New32a()
	h.Write([]byte(r.ClientIP))
	return int(h.Sum32() & 0x7fff)
}

// Verdict is the unified outcome of a stage (or chain) evaluation.
type Verdict struct {
	// Type is the bounce type of the rejection; TNone means the
	// request passed.
	Type ndr.Type
	// Template is an ndr.Catalog index override; -1 lets the domain's
	// dialect pick at Resolve time.
	Template int
}

// Pass is the accepting verdict.
func Pass() Verdict { return Verdict{Type: ndr.TNone, Template: -1} }

// Reject builds a rejecting verdict with no template override.
func Reject(t ndr.Type) Verdict { return Verdict{Type: t, Template: -1} }

// Rejected reports whether the verdict refuses the request.
func (v Verdict) Rejected() bool { return v.Type != ndr.TNone }

// Resolved is a completed rejection: the concrete catalog template the
// receiver renders, with its SMTP reply code, enhanced status code,
// and permanence class.
type Resolved struct {
	Type      ndr.Type
	Index     int // ndr.Catalog index
	Code      mail.ReplyCode
	Enh       mail.EnhancedCode
	Temporary bool
}

// StageState is the mutable, shard-owned substrate stages read and
// write: counters for rate-limit windows, the learned-mandate set, the
// DNS resolver and authentication evaluators, the deterministic RNG of
// the current delivery, and the spamtrap report sink. The bulk engine
// backs it with per-shard maps (one owner goroutine per batch); the
// SMTP bridge backs it with a mutex-guarded per-backend instance.
type StageState interface {
	// RNG returns the random stream probability draws come from.
	RNG() *simrng.RNG
	// Resolver returns the DNS resolver policy checks query.
	Resolver() *dns.Resolver
	// SPF, DKIM and DMARC return the evaluators bound to Resolver.
	SPF() *auth.SPFEvaluator
	DKIM() *auth.DKIMVerifier
	DMARC() *auth.DMARCEvaluator
	// Bump increments and returns the counter at key.
	Bump(key uint64) int
	// Peek returns the counter at key without incrementing.
	Peek(key uint64) int
	// LearnOnce records key and reports whether it was already known.
	LearnOnce(key uint64) bool
	// ReportSpam sinks a spamtrap hit against ip at t.
	ReportSpam(ip string, at time.Time)
}

// CheckFunc evaluates one stage against a request.
type CheckFunc func(st StageState, req *Request) Verdict

// Stage is one named receiver check bound to a domain's policy.
type Stage struct {
	Name  string
	Type  ndr.Type // principal bounce type; TNone for side-effect stages
	Phase Phase
	Check CheckFunc
}

// StageInfo describes one catalog entry for documentation and CLIs.
type StageInfo struct {
	Name  string
	Type  ndr.Type
	Phase Phase
	Doc   string
}

// Stages returns the full stage catalog in chain order.
func Stages() []StageInfo {
	out := make([]StageInfo, len(catalog))
	for i, def := range catalog {
		out[i] = StageInfo{Name: def.name, Type: def.typ, Phase: def.phase, Doc: def.doc}
	}
	return out
}

// StageNames returns the catalog's stage names in chain order.
func StageNames() []string {
	names := make([]string, len(catalog))
	for i, def := range catalog {
		names[i] = def.name
	}
	return names
}

// ParseStageList splits a comma-separated stage list and validates
// every name against the catalog. An empty string yields nil.
func ParseStageList(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []string
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !knownStage(name) {
			return nil, fmt.Errorf("policy: unknown stage %q (have %s)",
				name, strings.Join(StageNames(), ", "))
		}
		out = append(out, name)
	}
	return out, nil
}

func knownStage(name string) bool {
	for _, def := range catalog {
		if def.name == name {
			return true
		}
	}
	return false
}

// Env is the world-level context chains evaluate against, built once
// and shared read-only by every chain.
type Env struct {
	World        *world.World
	senderByName map[string]*world.SenderDomain
	proxyByIP    map[string]*world.ProxyMTA
}

// NewEnv indexes w for chain construction.
func NewEnv(w *world.World) *Env {
	env := &Env{
		World:        w,
		senderByName: make(map[string]*world.SenderDomain, len(w.SenderDomains)),
		proxyByIP:    make(map[string]*world.ProxyMTA, len(w.Proxies)),
	}
	for _, sd := range w.SenderDomains {
		env.senderByName[sd.Name] = sd
	}
	for _, p := range w.Proxies {
		env.proxyByIP[p.IP] = p
	}
	return env
}

// SenderDomain returns the customer domain named name, or nil.
func (env *Env) SenderDomain(name string) *world.SenderDomain { return env.senderByName[name] }

// ProxyByIP returns the proxy MTA at ip, or nil.
func (env *Env) ProxyByIP(ip string) *world.ProxyMTA { return env.proxyByIP[ip] }

// Metrics aggregates per-stage rejection counts across every chain
// sharing it. Counters are atomic: chains owned by different shard
// workers (and concurrent SMTP sessions) bump them freely, and the
// totals are independent of interleaving.
type Metrics struct {
	hits map[string]*atomic.Uint64
}

// NewMetrics creates a counter set covering the stage catalog.
func NewMetrics() *Metrics {
	m := &Metrics{hits: make(map[string]*atomic.Uint64, len(catalog))}
	for _, def := range catalog {
		m.hits[def.name] = new(atomic.Uint64)
	}
	return m
}

func (m *Metrics) bump(name string) {
	if c, ok := m.hits[name]; ok {
		c.Add(1)
	}
}

// Hits snapshots the per-stage rejection counts.
func (m *Metrics) Hits() map[string]uint64 {
	out := make(map[string]uint64, len(m.hits))
	for name, c := range m.hits {
		out[name] = c.Load()
	}
	return out
}

// StageHit is one per-stage rejection counter in exportable form —
// the /v1/stats and /metrics surface of the policy chain.
type StageHit struct {
	Stage string `json:"stage"`
	Phase string `json:"phase"`
	Type  string `json:"type"` // principal bounce type; "-" for side-effect stages
	Hits  uint64 `json:"hits"`
}

// Snapshot exports every stage counter (including zeros) in chain
// order, so consumers render a stable catalog without knowing it.
func (m *Metrics) Snapshot() []StageHit {
	out := make([]StageHit, 0, len(catalog))
	for _, def := range catalog {
		typ := def.typ.String()
		if def.typ == ndr.TNone {
			typ = "-"
		}
		out = append(out, StageHit{
			Stage: def.name,
			Phase: def.phase.String(),
			Type:  typ,
			Hits:  m.hits[def.name].Load(),
		})
	}
	return out
}

// Format renders non-zero hit counts as "name=count" pairs in chain
// order (stable for logs and tests).
func (m *Metrics) Format() string {
	var parts []string
	for _, name := range StageNames() {
		if n := m.hits[name].Load(); n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, n))
		}
	}
	return strings.Join(parts, " ")
}

// ChainOptions configures chain construction.
type ChainOptions struct {
	// Metrics receives per-stage rejection counts; nil disables.
	Metrics *Metrics
	// Disable lists stage names to skip (ablation).
	Disable []string
	// Force lists stage names that reject unconditionally (ablation;
	// no effect on side-effect stages with Type TNone).
	Force []string
}

type chainStage struct {
	Stage
	disabled bool
	forced   bool
}

// Chain is the assembled policy gauntlet of one receiver domain. It is
// read-only after construction (and after any Disable/Force calls made
// before traffic starts), so one chain may be evaluated by its owning
// shard worker and inspected concurrently.
type Chain struct {
	env         *Env
	domain      *world.ReceiverDomain
	metrics     *Metrics
	stages      []chainStage
	byName      map[string]int
	resolveSeed uint64
}

// NewChain assembles the stage chain for domain d from its policy.
func NewChain(env *Env, d *world.ReceiverDomain, opts ChainOptions) *Chain {
	c := &Chain{
		env:         env,
		domain:      d,
		metrics:     opts.Metrics,
		byName:      make(map[string]int, len(catalog)),
		resolveSeed: env.World.Cfg.Seed ^ 0x5e7a11cd,
	}
	for _, def := range catalog {
		c.byName[def.name] = len(c.stages)
		c.stages = append(c.stages, chainStage{Stage: Stage{
			Name:  def.name,
			Type:  def.typ,
			Phase: def.phase,
			Check: def.check(env, d),
		}})
	}
	if err := c.Disable(opts.Disable...); err != nil {
		panic(err) // names validated by ParseStageList; programmer error
	}
	if err := c.Force(opts.Force...); err != nil {
		panic(err)
	}
	return c
}

// Domain returns the receiver domain the chain enforces.
func (c *Chain) Domain() *world.ReceiverDomain { return c.domain }

// Disable turns the named stages off. Unknown names error.
func (c *Chain) Disable(names ...string) error {
	return c.set(names, func(s *chainStage) { s.disabled = true })
}

// Force makes the named stages reject unconditionally. Unknown names
// error; forcing a side-effect stage (Type TNone) is a no-op.
func (c *Chain) Force(names ...string) error {
	return c.set(names, func(s *chainStage) { s.forced = true })
}

func (c *Chain) set(names []string, apply func(*chainStage)) error {
	for _, name := range names {
		i, ok := c.byName[name]
		if !ok {
			return fmt.Errorf("policy: unknown stage %q", name)
		}
		apply(&c.stages[i])
	}
	return nil
}

// Evaluate runs every enabled stage in MTA order and returns the first
// rejection (a passing verdict if the gauntlet clears).
func (c *Chain) Evaluate(st StageState, req *Request) Verdict {
	return c.eval(st, req, func(Phase) bool { return true })
}

// EvaluatePhase runs only the stages bound to phase p — the wire
// path's per-callback entry point. Because the catalog is
// phase-monotonic, running CONNECT/MAIL/RCPT/DATA in conversation
// order visits the stages in the same order Evaluate does.
func (c *Chain) EvaluatePhase(p Phase, st StageState, req *Request) Verdict {
	return c.eval(st, req, func(sp Phase) bool { return sp == p })
}

func (c *Chain) eval(st StageState, req *Request, want func(Phase) bool) Verdict {
	for i := range c.stages {
		cs := &c.stages[i]
		if cs.disabled || !want(cs.Phase) {
			continue
		}
		var v Verdict
		if cs.forced && cs.Type != ndr.TNone {
			v = Reject(cs.Type)
		} else {
			v = cs.Check(st, req)
		}
		if v.Rejected() {
			if c.metrics != nil {
				c.metrics.bump(cs.Name)
			}
			return v
		}
	}
	return Pass()
}

// Resolve completes a rejection into the concrete catalog template the
// domain renders. The dialect draw is keyed by the envelope (sender ×
// domain × type) rather than by evaluation order, so the bulk engine
// and the wire bridge resolve the identical reply for the same
// rejection — the property the differential engine-vs-wire test
// enforces.
func (c *Chain) Resolve(v Verdict, req *Request) Resolved {
	d := c.domain
	rng := simrng.New(c.resolveSeed).
		Stream("ndr:" + d.Name + "|" + req.From.String() + "|" + v.Type.String())
	idx := -1
	if d.Policy.AmbiguousNDR && AmbiguousEligible(v.Type) {
		idx = d.AmbiguousTemplate(rng)
	}
	if idx < 0 && v.Template >= 0 {
		idx = v.Template
	}
	if idx < 0 {
		idx = d.TemplateFor(v.Type, rng)
	}
	tp := &ndr.Catalog[idx]
	return Resolved{Type: v.Type, Index: idx, Code: tp.Code, Enh: tp.Enh, Temporary: tp.Soft()}
}

// AmbiguousEligible reports whether receivers with AmbiguousNDR
// obscure rejections of type typ behind Table-6 templates.
func AmbiguousEligible(typ ndr.Type) bool {
	switch typ {
	case ndr.T8NoSuchUser, ndr.T13ContentSpam, ndr.T11RateLimited,
		ndr.T5Blocklisted, ndr.T3AuthFail, ndr.T1SenderDNS:
		return true
	}
	return false
}

// TemplateDomain picks which domain name appears in the NDR text:
// sender-side identity types reference the sender domain.
func TemplateDomain(typ ndr.Type, sender, receiver string) string {
	switch typ {
	case ndr.T1SenderDNS, ndr.T3AuthFail:
		return sender
	default:
		return receiver
	}
}

// BlocklistName picks the blocklist a domain names in its T5 NDRs,
// stable per domain.
func BlocklistName(domain string) string {
	h := fnv.New32a()
	h.Write([]byte(domain))
	switch h.Sum32() % 10 {
	case 0:
		return "SpamCop"
	case 1:
		return "Barracuda"
	default:
		return "Spamhaus"
	}
}

// Key derives the uint64 counter key for (kind, numeric id, string
// scope, window index) tuples — rate-limit windows and learned-mandate
// sets share one keyspace per StageState.
func Key(kind string, a int, s string, b int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(kind))
	h.Write([]byte{byte(a), byte(a >> 8)})
	h.Write([]byte(s))
	var buf [4]byte
	buf[0], buf[1], buf[2], buf[3] = byte(b), byte(b>>8), byte(b>>16), byte(b>>24)
	h.Write(buf[:])
	return h.Sum64()
}
