package policy

import (
	"strings"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/dns"
	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/ndr"
	"repro/internal/world"
)

// stageDef is one catalog entry: the single source of truth a chain,
// Stages(), StageNames() and the CLI docs are all built from. check
// binds the stage to the world env and one receiver domain.
type stageDef struct {
	name  string
	typ   ndr.Type
	phase Phase
	doc   string
	check func(env *Env, d *world.ReceiverDomain) CheckFunc
}

// catalog is the full receiver gauntlet in MTA order. The order is
// phase-monotonic (MAIL < RCPT < DATA) so the linear bulk-engine walk
// and the per-phase wire walk agree on the first rejection.
var catalog = []stageDef{
	{
		name: "tls", typ: ndr.T4STARTTLS, phase: PhaseMail,
		doc: "STARTTLS mandate: reject plaintext MAIL until the sender learns to negotiate TLS (T4)",
		check: func(env *Env, d *world.ReceiverDomain) CheckFunc {
			return func(st StageState, req *Request) Verdict {
				if d.Policy.TLS != world.TLSMandatory || req.TLS {
					return Pass()
				}
				if req.Proxy == nil {
					// Unknown clients have no mandate memory to learn into.
					return Reject(ndr.T4STARTTLS)
				}
				// Coremail starts in plaintext and learns the mandate on
				// first contact. High-volume domains get their mandate
				// propagated across a region's proxies (shared
				// configuration); for tail domains every proxy discovers
				// it individually.
				var key uint64
				if d.Rank < 100 {
					key = Key("tls", int(req.Proxy.Region[0])<<8|int(req.Proxy.Region[1]), d.Name, 0)
				} else {
					key = Key("tls", req.Proxy.ID+1000, d.Name, 0)
				}
				if !st.LearnOnce(key) {
					return Reject(ndr.T4STARTTLS)
				}
				return Pass()
			}
		},
	},
	{
		name: "dnsbl", typ: ndr.T5Blocklisted, phase: PhaseMail,
		doc: "DNS blocklist lookup against the shared reputation feed (T5)",
		check: func(env *Env, d *world.ReceiverDomain) CheckFunc {
			return func(st StageState, req *Request) Verdict {
				pol := &d.Policy
				if pol.UsesDNSBL && !req.At.Before(pol.DNSBLFrom) &&
					env.World.Blocklist.Listed(req.ClientIP, req.At) {
					return Reject(ndr.T5Blocklisted)
				}
				return Pass()
			}
		},
	},
	{
		name: "source-rate", typ: ndr.T7TooFast, phase: PhaseMail,
		doc: "per-source hourly inbound rate limit (T7); fresh emails consume quota, retries re-test it",
		check: func(env *Env, d *world.ReceiverDomain) CheckFunc {
			return func(st StageState, req *Request) Verdict {
				limit := d.Policy.PerProxyHourlyLimit
				if limit <= 0 {
					return Pass()
				}
				key := Key("hr", req.SourceID(), d.Name, clock.Hour(req.At))
				n := st.Peek(key)
				if req.First {
					n = st.Bump(key)
				}
				if n > limit {
					return Reject(ndr.T7TooFast)
				}
				return Pass()
			}
		},
	},
	{
		name: "sender-dns", typ: ndr.T1SenderDNS, phase: PhaseMail,
		doc: "MAIL FROM domain DNS health: NS lookup for basic validation and SPF (T1)",
		check: func(env *Env, d *world.ReceiverDomain) CheckFunc {
			return func(st StageState, req *Request) Verdict {
				ans := st.Resolver().Lookup(req.From.Domain, dns.TypeNS, req.At)
				if ans.Code == dns.ServFail || ans.Code == dns.Timeout {
					return Reject(ndr.T1SenderDNS)
				}
				return Pass()
			}
		},
	},
	{
		name: "greylist", typ: ndr.T6Greylisted, phase: PhaseRcpt,
		doc: "greylisting: defer unseen (client, from, to) tuples (T6)",
		check: func(env *Env, d *world.ReceiverDomain) CheckFunc {
			return func(st StageState, req *Request) Verdict {
				if d.Policy.Greylisting && d.Greylist != nil {
					v := d.Greylist.Check(req.ClientIP, req.From.String(), req.To.String(), req.At)
					if v == greylist.Defer {
						return Reject(ndr.T6Greylisted)
					}
				}
				return Pass()
			}
		},
	},
	{
		name: "spamtrap", typ: ndr.TNone, phase: PhaseRcpt,
		doc: "spamtrap exposure: spam reaching trap addresses reports the client to the shared blocklist (side effect only)",
		check: func(env *Env, d *world.ReceiverDomain) CheckFunc {
			return func(st StageState, req *Request) Verdict {
				// Traps fire once the sender is past connection-level
				// blocks; the report drives the Figure-6 blocklisting
				// dynamics rather than this attempt's verdict.
				if req.Proxy == nil {
					return Pass()
				}
				if req.SpamFlagged || d.Filter.Classify(req.Tokens) {
					pol := &d.Policy
					if st.RNG().Bool(env.World.TrapProb * req.Proxy.TrapExposure * (pol.SpamtrapShare / 0.03)) {
						st.ReportSpam(req.Proxy.IP, req.At)
					}
				}
				return Pass()
			}
		},
	},
	{
		name: "rcpt-count", typ: ndr.T10TooManyRcpts, phase: PhaseRcpt,
		doc: "recipient-count ceiling per message (T10)",
		check: func(env *Env, d *world.ReceiverDomain) CheckFunc {
			return func(st StageState, req *Request) Verdict {
				if d.Policy.MaxRcpts > 0 && req.RcptCount > d.Policy.MaxRcpts {
					return Reject(ndr.T10TooManyRcpts)
				}
				return Pass()
			}
		},
	},
	{
		name: "rcpt-exists", typ: ndr.T8NoSuchUser, phase: PhaseRcpt,
		doc: "recipient existence and account-inactive checks (T8)",
		check: func(env *Env, d *world.ReceiverDomain) CheckFunc {
			return func(st StageState, req *Request) Verdict {
				mbox, ok := d.Users[req.To.Local]
				if !ok {
					return Reject(ndr.T8NoSuchUser)
				}
				if mbox.InactiveAt(req.At) {
					return Verdict{Type: ndr.T8NoSuchUser, Template: inactiveIdx}
				}
				return Pass()
			}
		},
	},
	{
		name: "quota", typ: ndr.T9MailboxFull, phase: PhaseRcpt,
		doc: "mailbox over-quota windows (T9)",
		check: func(env *Env, d *world.ReceiverDomain) CheckFunc {
			return func(st StageState, req *Request) Verdict {
				// Looked up again rather than threaded from rcpt-exists so
				// the stage stays meaningful when rcpt-exists is ablated.
				if mbox, ok := d.Users[req.To.Local]; ok && mbox.FullAt(req.At) {
					return Reject(ndr.T9MailboxFull)
				}
				return Pass()
			}
		},
	},
	{
		name: "inbound-rate", typ: ndr.T11RateLimited, phase: PhaseRcpt,
		doc: "per-recipient and per-domain daily inbound volume limits (T11)",
		check: func(env *Env, d *world.ReceiverDomain) CheckFunc {
			return func(st StageState, req *Request) Verdict {
				pol := &d.Policy
				if pol.UserDailyLimit > 0 {
					key := Key("ud", 0, req.To.String(), clock.Day(req.At))
					n := st.Peek(key)
					if req.First {
						n = st.Bump(key)
					}
					if n > pol.UserDailyLimit {
						return Reject(ndr.T11RateLimited)
					}
				}
				if pol.DomainDailyLimit > 0 {
					key := Key("dd", 0, d.Name, clock.Day(req.At))
					n := st.Peek(key)
					if req.First {
						n = st.Bump(key)
					}
					if n > pol.DomainDailyLimit {
						return Reject(ndr.T11RateLimited)
					}
				}
				return Pass()
			}
		},
	},
	{
		name: "auth", typ: ndr.T3AuthFail, phase: PhaseData,
		doc: "SPF/DKIM verification with DMARC policy (T3); DKIM needs the message body, so the stage sits at DATA",
		check: func(env *Env, d *world.ReceiverDomain) CheckFunc {
			return func(st StageState, req *Request) Verdict {
				if !d.Policy.EnforceAuth || req.Proxy == nil {
					return Pass()
				}
				senderDomain := req.From.Domain
				spfRes := st.SPF().Evaluate(req.ClientIP, senderDomain, req.At)
				dkimRes := auth.DKIMNone
				if sd := env.SenderDomain(senderDomain); sd != nil {
					dkimRes = st.DKIM().Verify(sd.Signer.Sign(req.MsgID), req.MsgID, req.At)
				}
				if spfRes.Pass() || dkimRes.Pass() {
					return Pass()
				}
				if spfRes == auth.SPFTempError || dkimRes == auth.DKIMTempError {
					return Verdict{Type: ndr.T3AuthFail, Template: authBothIdx} // temp 421 variant
				}
				dm := st.DMARC().Evaluate(senderDomain, spfRes, senderDomain, dkimRes, senderDomain, req.At)
				if dm.Found && dm.Policy == auth.DMARCReject && !dm.Aligned {
					return Verdict{Type: ndr.T3AuthFail, Template: authDMARCIdx}
				}
				// Neither mechanism passed; strict receivers bounce (the
				// paper's 42%/55% both-vs-either split emerges from how
				// records break).
				if spfRes == auth.SPFFail && dkimRes == auth.DKIMFail {
					return Verdict{Type: ndr.T3AuthFail, Template: authBothIdx}
				}
				return Verdict{Type: ndr.T3AuthFail, Template: authEitherIdx}
			}
		},
	},
	{
		name: "size", typ: ndr.T12TooLarge, phase: PhaseData,
		doc: "message size ceiling (T12)",
		check: func(env *Env, d *world.ReceiverDomain) CheckFunc {
			return func(st StageState, req *Request) Verdict {
				if d.Policy.MaxMsgSize > 0 && req.SizeBytes > d.Policy.MaxMsgSize {
					return Reject(ndr.T12TooLarge)
				}
				return Pass()
			}
		},
	},
	{
		name: "content", typ: ndr.T13ContentSpam, phase: PhaseData,
		doc: "content spam filter over the message tokens (T13)",
		check: func(env *Env, d *world.ReceiverDomain) CheckFunc {
			return func(st StageState, req *Request) Verdict {
				if d.Filter.Classify(req.Tokens) {
					return Reject(ndr.T13ContentSpam)
				}
				return Pass()
			}
		},
	},
	{
		name: "quirk", typ: ndr.T16Unknown, phase: PhaseData,
		doc: "idiosyncratic rejections: RFC-compliance pedantry, intrusion prevention and similar receiver quirks (T16)",
		check: func(env *Env, d *world.ReceiverDomain) CheckFunc {
			return func(st StageState, req *Request) Verdict {
				if d.Policy.QuirkProb > 0 && st.RNG().Bool(d.Policy.QuirkProb) {
					return Reject(ndr.T16Unknown)
				}
				return Pass()
			}
		},
	},
}

// Catalog indices of the specific templates some stages pin, resolved
// once against the ndr catalog.
var (
	authBothIdx   = findTemplate(ndr.T3AuthFail, "SPF and DKIM both")
	authEitherIdx = findTemplate(ndr.T3AuthFail, "SPF or DKIM")
	authDMARCIdx  = findTemplate(ndr.T3AuthFail, "DMARC policy")
	inactiveIdx   = findInactiveTemplate()
)

// findTemplate locates the catalog template of typ whose text contains
// marker.
func findTemplate(typ ndr.Type, marker string) int {
	for _, i := range ndr.TemplatesFor(typ) {
		if strings.Contains(ndr.Catalog[i].Text, marker) {
			return i
		}
	}
	return -1
}

// findInactiveTemplate returns the catalog index of the "account
// inactive" T8 variant (enhanced code 5.2.1).
func findInactiveTemplate() int {
	for _, i := range ndr.TemplatesFor(ndr.T8NoSuchUser) {
		if ndr.Catalog[i].Enh == (mail.EnhancedCode{Class: 5, Subject: 2, Detail: 1}) {
			return i
		}
	}
	return -1
}
