package policy

import (
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/dns"
	"repro/internal/mail"
	"repro/internal/ndr"
	"repro/internal/simrng"
	"repro/internal/world"
)

var testAt = clock.StudyStart.AddDate(0, 0, 20).Add(12 * time.Hour)

// testState is a throwaway StageState over a clean resolver.
type testState struct {
	rng      *simrng.RNG
	resolver *dns.Resolver
	spf      *auth.SPFEvaluator
	dkim     *auth.DKIMVerifier
	dmarc    *auth.DMARCEvaluator
	counters map[uint64]int
	learned  map[uint64]bool
	reports  []string
}

func newTestState(w *world.World) *testState {
	res := dns.NewResolver(w.DNS, nil)
	return &testState{
		rng:      simrng.New(7),
		resolver: res,
		spf:      &auth.SPFEvaluator{Resolver: res},
		dkim:     &auth.DKIMVerifier{Resolver: res},
		dmarc:    &auth.DMARCEvaluator{Resolver: res},
		counters: make(map[uint64]int),
		learned:  make(map[uint64]bool),
	}
}

func (st *testState) RNG() *simrng.RNG            { return st.rng }
func (st *testState) Resolver() *dns.Resolver     { return st.resolver }
func (st *testState) SPF() *auth.SPFEvaluator     { return st.spf }
func (st *testState) DKIM() *auth.DKIMVerifier    { return st.dkim }
func (st *testState) DMARC() *auth.DMARCEvaluator { return st.dmarc }

func (st *testState) Bump(key uint64) int {
	st.counters[key]++
	return st.counters[key]
}
func (st *testState) Peek(key uint64) int { return st.counters[key] }
func (st *testState) LearnOnce(key uint64) bool {
	if st.learned[key] {
		return true
	}
	st.learned[key] = true
	return false
}
func (st *testState) ReportSpam(ip string, at time.Time) { st.reports = append(st.reports, ip) }

// cleanDomain finds a domain whose policy won't interfere with the
// focused request below.
func cleanDomain(t *testing.T, w *world.World) *world.ReceiverDomain {
	t.Helper()
	for _, d := range w.Domains {
		p := d.Policy
		if !p.AmbiguousNDR && !p.UsesDNSBL && !p.Greylisting && !p.EnforceAuth &&
			p.TLS != world.TLSMandatory && p.QuirkProb == 0 && len(d.UserList) > 0 {
			return d
		}
	}
	t.Skip("no clean domain in tiny world")
	return nil
}

func cleanRequest(w *world.World, d *world.ReceiverDomain, local string) *Request {
	proxy := w.Proxies[0]
	return &Request{
		From:      mail.Address{Local: "tester", Domain: "sender.example"},
		To:        mail.Address{Local: local, Domain: d.Name},
		MsgID:     "m1",
		ClientIP:  proxy.IP,
		Proxy:     proxy,
		At:        testAt,
		First:     true,
		RcptCount: 1,
		Tokens:    []string{"meeting", "agenda", "timesheet"},
	}
}

func TestCatalogPhaseMonotonic(t *testing.T) {
	stages := Stages()
	for i := 1; i < len(stages); i++ {
		if stages[i].Phase < stages[i-1].Phase {
			t.Errorf("stage %q (phase %v) follows %q (phase %v): catalog must be phase-monotonic",
				stages[i].Name, stages[i].Phase, stages[i-1].Name, stages[i-1].Phase)
		}
	}
}

func TestParseStageList(t *testing.T) {
	got, err := ParseStageList(" dnsbl, content ")
	if err != nil || len(got) != 2 || got[0] != "dnsbl" || got[1] != "content" {
		t.Errorf("ParseStageList: got %v, %v", got, err)
	}
	if got, err := ParseStageList(""); err != nil || got != nil {
		t.Errorf("empty list: got %v, %v", got, err)
	}
	if _, err := ParseStageList("dnsbl,bogus"); err == nil {
		t.Error("unknown stage name accepted")
	}
}

func TestChainFirstRejectionAndMetrics(t *testing.T) {
	w := world.New(world.TinyConfig())
	d := cleanDomain(t, w)
	env := NewEnv(w)
	m := NewMetrics()
	chain := NewChain(env, d, ChainOptions{Metrics: m})
	st := newTestState(w)

	// A known user passes the gauntlet.
	req := cleanRequest(w, d, d.UserList[0])
	if v := chain.Evaluate(st, req); v.Rejected() {
		t.Fatalf("clean request rejected: %v", v.Type)
	}
	// A ghost user is the first rejection (T8), counted by metrics.
	// A different proxy keeps the per-source rate window fresh.
	ghost := cleanRequest(w, d, "no-such-user-zz")
	ghost.Proxy = w.Proxies[1]
	ghost.ClientIP = ghost.Proxy.IP
	v := chain.Evaluate(st, ghost)
	if v.Type != ndr.T8NoSuchUser {
		t.Fatalf("ghost verdict %v, want T8", v.Type)
	}
	if m.Hits()["rcpt-exists"] != 1 {
		t.Errorf("rcpt-exists hits = %d, want 1", m.Hits()["rcpt-exists"])
	}
}

func TestChainDisableAndForce(t *testing.T) {
	w := world.New(world.TinyConfig())
	d := cleanDomain(t, w)
	env := NewEnv(w)
	st := newTestState(w)

	// Disabling rcpt-exists lets a ghost through the rest of the chain.
	off := NewChain(env, d, ChainOptions{Disable: []string{"rcpt-exists"}})
	if v := off.Evaluate(st, cleanRequest(w, d, "no-such-user-zz")); v.Rejected() {
		t.Errorf("ghost rejected with rcpt-exists disabled: %v", v.Type)
	}
	// Forcing content rejects even ham. A fresh proxy keeps the
	// per-source rate window out of the way.
	forced := NewChain(env, d, ChainOptions{Force: []string{"content"}})
	req := cleanRequest(w, d, d.UserList[0])
	req.Proxy = w.Proxies[1]
	req.ClientIP = req.Proxy.IP
	if v := forced.Evaluate(st, req); v.Type != ndr.T13ContentSpam {
		t.Errorf("forced content verdict %v, want T13", v.Type)
	}
	// Unknown names error.
	c := NewChain(env, d, ChainOptions{})
	if err := c.Disable("bogus"); err == nil {
		t.Error("Disable accepted unknown stage")
	}
	if err := c.Force("bogus"); err == nil {
		t.Error("Force accepted unknown stage")
	}
}

// TestEvaluateMatchesPhaseWalk checks the core phase-monotonicity
// property: a linear Evaluate and a CONNECT→MAIL→RCPT→DATA phase walk
// reach the same first rejection. Two identically-seeded worlds keep
// the stateful stages (greylist, counters) independent.
func TestEvaluateMatchesPhaseWalk(t *testing.T) {
	w1 := world.New(world.TinyConfig())
	w2 := world.New(world.TinyConfig())
	env1, env2 := NewEnv(w1), NewEnv(w2)
	st1, st2 := newTestState(w1), newTestState(w2)

	phases := []Phase{PhaseConnect, PhaseMail, PhaseRcpt, PhaseData}
	checked := 0
	for i, d1 := range w1.Domains[:10] {
		d2 := w2.Domains[i]
		if d1.Name != d2.Name {
			t.Fatal("worlds diverge")
		}
		c1 := NewChain(env1, d1, ChainOptions{})
		c2 := NewChain(env2, d2, ChainOptions{})
		locals := append([]string{}, d1.UserList...)
		if len(locals) > 3 {
			locals = locals[:3]
		}
		locals = append(locals, "ghost-zz")
		for j, local := range locals {
			r1 := cleanRequest(w1, d1, local)
			r2 := cleanRequest(w2, d2, local)
			r1.Proxy = w1.Proxies[j%len(w1.Proxies)]
			r2.Proxy = w2.Proxies[j%len(w2.Proxies)]
			r1.ClientIP, r2.ClientIP = r1.Proxy.IP, r2.Proxy.IP

			linear := c1.Evaluate(st1, r1)
			walked := Pass()
			for _, p := range phases {
				if walked = c2.EvaluatePhase(p, st2, r2); walked.Rejected() {
					break
				}
			}
			if linear.Type != walked.Type || linear.Template != walked.Template {
				t.Errorf("%s/%s: linear %v/%d, phase walk %v/%d",
					d1.Name, local, linear.Type, linear.Template, walked.Type, walked.Template)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no requests checked")
	}
}

func TestResolveEnvelopeDeterministic(t *testing.T) {
	w := world.New(world.TinyConfig())
	d := cleanDomain(t, w)
	chain := NewChain(NewEnv(w), d, ChainOptions{})
	req := cleanRequest(w, d, "ghost-zz")
	v := Reject(ndr.T8NoSuchUser)
	first := chain.Resolve(v, req)
	for i := 0; i < 5; i++ {
		if got := chain.Resolve(v, req); got != first {
			t.Fatalf("Resolve not deterministic: %+v vs %+v", got, first)
		}
	}
	if ndr.Catalog[first.Index].Type != ndr.T8NoSuchUser {
		t.Errorf("resolved template %d has type %v", first.Index, ndr.Catalog[first.Index].Type)
	}
	if first.Temporary != first.Code.Temporary() {
		t.Error("Temporary flag disagrees with reply code class")
	}
}

func TestStageHitRateLimit(t *testing.T) {
	w := world.New(world.TinyConfig())
	d := cleanDomain(t, w)
	if d.Policy.PerProxyHourlyLimit <= 0 {
		t.Skip("domain has no per-source limit")
	}
	chain := NewChain(NewEnv(w), d, ChainOptions{})
	st := newTestState(w)
	var last Verdict
	for i := 0; i <= d.Policy.PerProxyHourlyLimit; i++ {
		last = chain.Evaluate(st, cleanRequest(w, d, d.UserList[0]))
	}
	if last.Type != ndr.T7TooFast {
		t.Errorf("over-limit verdict %v, want T7", last.Type)
	}
	// Retries (First=false) only re-test the window, they don't drain it.
	retry := cleanRequest(w, d, d.UserList[0])
	retry.First = false
	key := Key("hr", retry.SourceID(), d.Name, clock.Hour(retry.At))
	before := st.Peek(key)
	chain.Evaluate(st, retry)
	if st.Peek(key) != before {
		t.Error("retry consumed rate-limit quota")
	}
}

func TestMetricsSnapshotCoversCatalogInOrder(t *testing.T) {
	m := NewMetrics()
	m.bump("dnsbl")
	m.bump("dnsbl")
	m.bump("greylist")
	snap := m.Snapshot()
	names := StageNames()
	if len(snap) != len(names) {
		t.Fatalf("snapshot has %d entries, catalog %d", len(snap), len(names))
	}
	for i, h := range snap {
		if h.Stage != names[i] {
			t.Fatalf("snapshot[%d] = %q, want chain order %q", i, h.Stage, names[i])
		}
		want := uint64(0)
		switch h.Stage {
		case "dnsbl":
			want = 2
		case "greylist":
			want = 1
		}
		if h.Hits != want {
			t.Fatalf("stage %s hits = %d, want %d", h.Stage, h.Hits, want)
		}
		if h.Phase == "" || h.Type == "" {
			t.Fatalf("stage %s snapshot misses phase/type: %+v", h.Stage, h)
		}
	}
}
