// Package ebrc implements the Email Bounce Reason Classifier of
// Section 3.2. The paper fine-tunes BERT on 4,000 raw NDR messages per
// type; offline and stdlib-only, we use multinomial naive Bayes over
// normalized NDR tokens, trained with the same template-bootstrapped
// procedure (Drain templates → manual top-200 labels → per-type raw
// sampling → per-template majority prediction) and evaluated with the
// same confusion-matrix protocol (paper: 93.85% recall, 91.24%
// precision). NDR text is short and highly templated, so NB reaches the
// same operating point.
package ebrc

import (
	"math"
	"sort"
	"strings"

	"repro/internal/ndr"
)

// Sample is one labeled training example.
type Sample struct {
	Text string
	Type ndr.Type
}

// Tokenize normalizes an NDR line into classifier features. It keeps
// SMTP reply codes and single status digits (the most discriminative
// tokens) while collapsing vendor noise: long numbers become <num>,
// mixed alphanumerics become <id>, and anything containing '@' becomes
// <addr>.
func Tokenize(line string) []string {
	var out []string
	for _, raw := range strings.Fields(strings.ToLower(line)) {
		if strings.ContainsRune(raw, '@') {
			out = append(out, "<addr>")
			continue
		}
		for _, tok := range splitAlnum(raw) {
			out = append(out, normalizeToken(tok))
		}
	}
	return out
}

// splitAlnum splits a field into maximal alphanumeric runs.
func splitAlnum(s string) []string {
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		alnum := c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
		if alnum && start < 0 {
			start = i
		}
		if !alnum && start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

func normalizeToken(tok string) string {
	digits, letters := 0, 0
	for i := 0; i < len(tok); i++ {
		if tok[i] >= '0' && tok[i] <= '9' {
			digits++
		} else {
			letters++
		}
	}
	switch {
	case digits == 0:
		return tok
	case letters > 0:
		return "<id>"
	case len(tok) <= 1:
		return tok // single status digit: highly discriminative
	case len(tok) == 3 && (tok[0] == '2' || tok[0] == '4' || tok[0] == '5'):
		return tok // SMTP reply code
	default:
		return "<num>"
	}
}

// Classifier is a trained multinomial naive Bayes model. It is
// immutable after Train, so Predict and PredictTemplate are safe for
// concurrent use — the property the online classify path relies on.
type Classifier struct {
	classes  []ndr.Type
	classIdx map[ndr.Type]int
	vocab    map[string]int
	logPrior []float64
	logLik   [][]float64 // class × (vocab + 1 unk slot)
}

// Train fits the classifier on the labeled samples with Laplace
// smoothing. It panics on an empty sample set.
func Train(samples []Sample) *Classifier {
	if len(samples) == 0 {
		panic("ebrc: no training samples")
	}
	c := &Classifier{
		classIdx: make(map[ndr.Type]int),
		vocab:    make(map[string]int),
	}
	// Stable class order: by type value.
	seen := map[ndr.Type]bool{}
	for _, s := range samples {
		seen[s.Type] = true
	}
	for _, t := range ndr.AllTypes {
		if seen[t] {
			c.classIdx[t] = len(c.classes)
			c.classes = append(c.classes, t)
		}
	}
	tokenized := make([][]string, len(samples))
	for i, s := range samples {
		tokenized[i] = Tokenize(s.Text)
		for _, tok := range tokenized[i] {
			if _, ok := c.vocab[tok]; !ok {
				c.vocab[tok] = len(c.vocab)
			}
		}
	}
	nc, nv := len(c.classes), len(c.vocab)
	counts := make([][]float64, nc)
	totals := make([]float64, nc)
	classN := make([]float64, nc)
	for i := range counts {
		counts[i] = make([]float64, nv)
	}
	for i, s := range samples {
		ci := c.classIdx[s.Type]
		classN[ci]++
		for _, tok := range tokenized[i] {
			counts[ci][c.vocab[tok]]++
			totals[ci]++
		}
	}
	c.logPrior = make([]float64, nc)
	c.logLik = make([][]float64, nc)
	for ci := 0; ci < nc; ci++ {
		c.logPrior[ci] = math.Log(classN[ci] / float64(len(samples)))
		c.logLik[ci] = make([]float64, nv+1)
		denom := totals[ci] + float64(nv+1) // +1 for the unknown slot
		for vi := 0; vi < nv; vi++ {
			c.logLik[ci][vi] = math.Log((counts[ci][vi] + 1) / denom)
		}
		c.logLik[ci][nv] = math.Log(1 / denom) // unseen token
	}
	return c
}

// Classes returns the types the classifier can predict.
func (c *Classifier) Classes() []ndr.Type {
	return append([]ndr.Type(nil), c.classes...)
}

// Predict labels one NDR line, returning the type and the log-domain
// margin between the best and second-best class (a confidence proxy).
func (c *Classifier) Predict(line string) (ndr.Type, float64) {
	toks := Tokenize(line)
	best, second := math.Inf(-1), math.Inf(-1)
	bestIdx := 0
	unk := len(c.vocab)
	for ci := range c.classes {
		score := c.logPrior[ci]
		for _, tok := range toks {
			vi, ok := c.vocab[tok]
			if !ok {
				vi = unk
			}
			score += c.logLik[ci][vi]
		}
		if score > best {
			second = best
			best, bestIdx = score, ci
		} else if score > second {
			second = score
		}
	}
	margin := best - second
	if math.IsInf(margin, 0) {
		margin = 0
	}
	return c.classes[bestIdx], margin
}

// PredictTemplate labels a template by majority vote over a sample of
// its raw messages — the paper's per-template prediction step ("we take
// the most frequently occurring type within a prediction set as the
// type of the corresponding template").
func (c *Classifier) PredictTemplate(lines []string) ndr.Type {
	votes := map[ndr.Type]int{}
	for _, l := range lines {
		t, _ := c.Predict(l)
		votes[t]++
	}
	var best ndr.Type
	bestN := -1
	// Deterministic tie-break by type order.
	for _, t := range ndr.AllTypes {
		if votes[t] > bestN {
			best, bestN = t, votes[t]
		}
	}
	return best
}

// Confusion is a confusion matrix over the classifier's classes.
type Confusion struct {
	Classes []ndr.Type
	idx     map[ndr.Type]int
	M       [][]int // [true][predicted]
}

// NewConfusion creates an empty matrix for the given classes.
func NewConfusion(classes []ndr.Type) *Confusion {
	cm := &Confusion{
		Classes: append([]ndr.Type(nil), classes...),
		idx:     make(map[ndr.Type]int),
	}
	cm.M = make([][]int, len(classes))
	for i, t := range classes {
		cm.idx[t] = i
		cm.M[i] = make([]int, len(classes))
	}
	return cm
}

// Add records one (truth, prediction) pair; unknown types are ignored.
func (cm *Confusion) Add(truth, pred ndr.Type) {
	ti, ok1 := cm.idx[truth]
	pi, ok2 := cm.idx[pred]
	if ok1 && ok2 {
		cm.M[ti][pi]++
	}
}

// Recall returns TP/(TP+FN) for type t (NaN-free: 0 when unsupported).
func (cm *Confusion) Recall(t ndr.Type) float64 {
	ti, ok := cm.idx[t]
	if !ok {
		return 0
	}
	row := 0
	for _, v := range cm.M[ti] {
		row += v
	}
	if row == 0 {
		return 0
	}
	return float64(cm.M[ti][ti]) / float64(row)
}

// Precision returns TP/(TP+FP) for type t.
func (cm *Confusion) Precision(t ndr.Type) float64 {
	ti, ok := cm.idx[t]
	if !ok {
		return 0
	}
	col := 0
	for r := range cm.M {
		col += cm.M[r][ti]
	}
	if col == 0 {
		return 0
	}
	return float64(cm.M[ti][ti]) / float64(col)
}

// MacroRecall averages recall over classes with support.
func (cm *Confusion) MacroRecall() float64 {
	sum, n := 0.0, 0
	for i, t := range cm.Classes {
		row := 0
		for _, v := range cm.M[i] {
			row += v
		}
		if row > 0 {
			sum += cm.Recall(t)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MacroPrecision averages precision over classes that were predicted at
// least once.
func (cm *Confusion) MacroPrecision() float64 {
	sum, n := 0.0, 0
	for i, t := range cm.Classes {
		col := 0
		for r := range cm.M {
			col += cm.M[r][i]
		}
		if col > 0 {
			sum += cm.Precision(t)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Accuracy returns the overall fraction of correct predictions.
func (cm *Confusion) Accuracy() float64 {
	correct, total := 0, 0
	for i := range cm.M {
		for j, v := range cm.M[i] {
			total += v
			if i == j {
				correct += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// TopConfusions returns the n largest off-diagonal cells, useful for
// error analysis in reports.
func (cm *Confusion) TopConfusions(n int) []struct {
	Truth, Pred ndr.Type
	Count       int
} {
	type cell struct {
		truth, pred ndr.Type
		count       int
	}
	var cells []cell
	for i := range cm.M {
		for j, v := range cm.M[i] {
			if i != j && v > 0 {
				cells = append(cells, cell{cm.Classes[i], cm.Classes[j], v})
			}
		}
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].count > cells[b].count })
	if n > len(cells) {
		n = len(cells)
	}
	out := make([]struct {
		Truth, Pred ndr.Type
		Count       int
	}, n)
	for i := 0; i < n; i++ {
		out[i] = struct {
			Truth, Pred ndr.Type
			Count       int
		}{cells[i].truth, cells[i].pred, cells[i].count}
	}
	return out
}
