package ebrc

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/ndr"
	"repro/internal/simrng"
)

// corpus renders n samples per non-ambiguous catalog template with
// varying parameters, labeled with the template's true type.
func corpus(n int, seed uint64) []Sample {
	rng := simrng.New(seed)
	var out []Sample
	for _, typ := range ndr.AllTypes {
		for _, ti := range ndr.NonAmbiguousTemplatesFor(typ) {
			for k := 0; k < n; k++ {
				p := ndr.Params{
					Addr:   fmt.Sprintf("u%d@d%d.com", rng.IntN(10000), rng.IntN(3000)),
					Local:  fmt.Sprintf("u%d", rng.IntN(10000)),
					Domain: fmt.Sprintf("d%d.com", rng.IntN(3000)),
					IP:     fmt.Sprintf("%d.%d.%d.%d", 5+rng.IntN(200), rng.IntN(250), rng.IntN(250), 1+rng.IntN(250)),
					MX:     fmt.Sprintf("mx%d.d%d.com", rng.IntN(4), rng.IntN(3000)),
					BL:     []string{"Spamhaus", "SpamCop", "Barracuda"}[rng.IntN(3)],
					Vendor: fmt.Sprintf("v%x", rng.Uint64()%0xffffff),
					Sec:    fmt.Sprintf("%d", 60+rng.IntN(600)),
					Size:   fmt.Sprintf("%d", 1000000+rng.IntN(50000000)),
				}
				out = append(out, Sample{Text: ndr.Catalog[ti].Render(p), Type: typ})
			}
		}
	}
	return out
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("550-5.1.1 bob@b.com Email could not be found (v12ab)")
	want := []string{"550", "5", "1", "1", "<addr>", "email", "could", "not", "be", "found", "<id>"}
	if !reflect.DeepEqual(toks, want) {
		t.Errorf("Tokenize = %v want %v", toks, want)
	}
}

func TestNormalizeToken(t *testing.T) {
	cases := map[string]string{
		"hello":  "hello",
		"550":    "550",
		"421":    "421",
		"5":      "5",
		"12345":  "<num>",
		"300":    "<num>", // 3xx is not a reply-code class we keep
		"v12ab":  "<id>",
		"201806": "<num>",
	}
	for in, want := range cases {
		if got := normalizeToken(in); got != want {
			t.Errorf("normalizeToken(%q)=%q want %q", in, got, want)
		}
	}
}

func TestTrainPredictOnCatalog(t *testing.T) {
	cls := Train(corpus(40, 1))
	test := corpus(10, 2)
	correct := 0
	for _, s := range test {
		got, _ := cls.Predict(s.Text)
		if got == s.Type {
			correct++
		}
	}
	acc := float64(correct) / float64(len(test))
	if acc < 0.9 {
		t.Errorf("holdout accuracy %.3f, want >= 0.90 (paper: ~0.92)", acc)
	}
}

func TestEvaluationMatchesPaperOperatingPoint(t *testing.T) {
	// The paper's protocol: manual evaluation over 100 messages per type
	// → 93.85% recall, 91.24% precision. Our NB substitute must land in
	// the same >90% regime on held-out renders.
	cls := Train(corpus(60, 3))
	test := corpus(12, 4)
	cm := NewConfusion(cls.Classes())
	for _, s := range test {
		pred, _ := cls.Predict(s.Text)
		cm.Add(s.Type, pred)
	}
	if r := cm.MacroRecall(); r < 0.90 {
		t.Errorf("macro recall %.4f < 0.90", r)
	}
	if p := cm.MacroPrecision(); p < 0.88 {
		t.Errorf("macro precision %.4f < 0.88", p)
	}
	if a := cm.Accuracy(); a < 0.90 {
		t.Errorf("accuracy %.4f < 0.90", a)
	}
}

func TestPredictTemplateMajority(t *testing.T) {
	cls := Train(corpus(40, 5))
	// 100 renders of one T9 template must majority-vote to T9.
	rng := simrng.New(6)
	var lines []string
	ti := ndr.NonAmbiguousTemplatesFor(ndr.T9MailboxFull)[0]
	for i := 0; i < 100; i++ {
		lines = append(lines, ndr.Catalog[ti].Render(ndr.Params{
			Addr: fmt.Sprintf("u%d@x.com", rng.IntN(1e6)), Local: "u",
		}))
	}
	if got := cls.PredictTemplate(lines); got != ndr.T9MailboxFull {
		t.Errorf("PredictTemplate = %v want T9", got)
	}
}

func TestPredictMarginPositive(t *testing.T) {
	cls := Train(corpus(30, 7))
	_, margin := cls.Predict("452-4.2.2 The email account that you tried to reach is over quota")
	if margin <= 0 {
		t.Errorf("margin %g should be positive for a clear case", margin)
	}
}

func TestTrainPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Train(nil) should panic")
		}
	}()
	Train(nil)
}

func TestConfusionCounters(t *testing.T) {
	cm := NewConfusion([]ndr.Type{ndr.T8NoSuchUser, ndr.T9MailboxFull})
	cm.Add(ndr.T8NoSuchUser, ndr.T8NoSuchUser)
	cm.Add(ndr.T8NoSuchUser, ndr.T9MailboxFull)
	cm.Add(ndr.T9MailboxFull, ndr.T9MailboxFull)
	cm.Add(ndr.T5Blocklisted, ndr.T8NoSuchUser) // unknown class: ignored

	if r := cm.Recall(ndr.T8NoSuchUser); r != 0.5 {
		t.Errorf("recall = %g want 0.5", r)
	}
	if p := cm.Precision(ndr.T9MailboxFull); p != 0.5 {
		t.Errorf("precision = %g want 0.5", p)
	}
	if a := cm.Accuracy(); a != 2.0/3.0 {
		t.Errorf("accuracy = %g", a)
	}
	top := cm.TopConfusions(5)
	if len(top) != 1 || top[0].Truth != ndr.T8NoSuchUser || top[0].Pred != ndr.T9MailboxFull {
		t.Errorf("TopConfusions = %+v", top)
	}
}

func TestConfusionEmpty(t *testing.T) {
	cm := NewConfusion([]ndr.Type{ndr.T8NoSuchUser})
	if cm.Accuracy() != 0 || cm.MacroRecall() != 0 || cm.MacroPrecision() != 0 {
		t.Error("empty matrix should report zeros, not NaN")
	}
	if cm.Recall(ndr.T5Blocklisted) != 0 || cm.Precision(ndr.T5Blocklisted) != 0 {
		t.Error("unknown class should report 0")
	}
}

func TestClassesCopy(t *testing.T) {
	cls := Train(corpus(5, 8))
	c1 := cls.Classes()
	c1[0] = ndr.TNone
	if cls.Classes()[0] == ndr.TNone {
		t.Error("Classes() leaked internal slice")
	}
}

// TestPredictConcurrent: a trained classifier is read-only, so the
// online ingest path may classify from many goroutines at once. Run
// under -race this pins that property down.
func TestPredictConcurrent(t *testing.T) {
	c := Train(corpus(5, 11))
	lines := []string{
		"550 5.1.1 user unknown",
		"421 4.7.0 greylisted, try again later",
		"554 5.7.1 message rejected as spam",
		"452 4.2.2 mailbox full",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				line := lines[(g+i)%len(lines)]
				if typ, _ := c.Predict(line); typ == ndr.TNone {
					t.Errorf("Predict(%q) returned TNone", line)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
