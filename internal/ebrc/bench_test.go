package ebrc

import (
	"fmt"
	"testing"

	"repro/internal/ndr"
)

func benchSamples(n int) []Sample {
	var out []Sample
	for _, typ := range ndr.AllTypes {
		for _, ti := range ndr.NonAmbiguousTemplatesFor(typ) {
			for k := 0; k < n; k++ {
				out = append(out, Sample{
					Text: ndr.Catalog[ti].Render(ndr.Params{
						Addr: fmt.Sprintf("u%d@d.com", k), Local: "u", Domain: "d.com",
						IP: "9.1.2.3", MX: "mx.d.com", BL: "Spamhaus",
						Vendor: fmt.Sprintf("v%d", k), Sec: "60", Size: "1",
					}),
					Type: typ,
				})
			}
		}
	}
	return out
}

func BenchmarkTokenize(b *testing.B) {
	line := "550-5.7.26 This message does not have authentication information or fails to pass authentication checks (SPF or DKIM)"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(line)
	}
}

func BenchmarkTrain(b *testing.B) {
	samples := benchSamples(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(samples)
	}
}

func BenchmarkPredict(b *testing.B) {
	cls := Train(benchSamples(20))
	line := "452-4.2.2 The email account that you tried to reach is over quota"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls.Predict(line)
	}
}
