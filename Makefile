GO ?= go

.PHONY: check fmt vet build build-cmds test race race-parallel bench bench-parallel serve bench-serve bench-ingest bench-merge bench-replay bench-smoke fuzz-decode chaos chaos-cli chaos-kill chaos-failover chaos-shard-failover cluster-diff

# check is the tier-1 gate plus static analysis and formatting.
check: fmt vet build build-cmds test

# fmt fails if any file is not gofmt-clean.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required for:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# build-cmds links every binary into bin/ (build ./... alone does not
# link main packages).
build-cmds:
	$(GO) build -o bin/ ./cmd/...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector.
race:
	$(GO) test -race ./...

# chaos is the deterministic fault-injection soak: replay the corpus
# through a fault-injecting server with a fault-injecting client (torn
# bodies, truncated gzip, slow-loris, duplicate replays, 429 sheds)
# across a fixed seed sweep, asserting the final report stays
# byte-identical to a clean batch run and no record is lost or
# double-counted. See DESIGN.md §9.
chaos:
	$(GO) test -run 'TestChaos|TestBatch|TestServerFault|TestReadDeadline|TestDrainZeroLoss|TestCrashRecovery|TestDurable' -count=1 -v ./internal/bounced/

# chaos-cli drives the same drill end-to-end through the binaries:
# generate a corpus, then chaos-replay it against a spawned server.
chaos-cli:
	$(GO) run ./cmd/bouncegen -emails 20000 -seed 5 -out /tmp/chaos_corpus.jsonl
	$(GO) run ./cmd/bounced loadgen -in /tmp/chaos_corpus.jsonl -spawn -batch 256 \
		-chaos 'torn=0.3,truncgz=0.2,dup=0.4,loris=0.1,lorispause=1ms' -seed 11 -out -

# chaos-kill is the kill -9 crash-recovery differential over real
# processes: a durable bounced is SIGKILLed at a seeded random point
# mid-stream, restarted on the same -data-dir, the client finishes the
# stream (retrying the in-flight batch), and the final report must be
# byte-identical to an uninterrupted run. See DESIGN.md §11.
chaos-kill:
	./scripts/chaos_kill.sh

# chaos-failover is the primary-death differential over a real replica
# set: a semi-sync durable primary is SIGKILLed mid-stream, its standby
# auto-promotes, the router re-elects it, the client retries the
# in-flight batch through the same router address, and the final report
# must be byte-identical to an uninterrupted single-node run with every
# record classified exactly once. See DESIGN.md §12.
chaos-failover:
	./scripts/chaos_failover.sh

# chaos-shard-failover composes sharding with replication: two shards,
# each a replica set (semi-sync durable primary + shard-aware standby +
# router), behind a coordinator fanning in through the routers. Shard
# 0's primary is SIGKILLed mid-stream; its standby auto-promotes, the
# router re-elects it, the client retries through the outage, and the
# coordinator's merged report must be byte-identical to an
# uninterrupted run with every record classified exactly once. See
# DESIGN.md §14.
chaos-shard-failover:
	./scripts/chaos_shard_failover.sh

# race-parallel focuses the race detector on the parallel delivery,
# streaming, decode, and incremental-snapshot paths (fast enough for
# every commit).
race-parallel:
	$(GO) test -race -run 'Parallel|WorkerCount|DeliverBatch|Pipe|FromSource|CollectStream|Incremental|WarmSnapshot|Frozen|Decoder' ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# bench-parallel measures DeliverBatch scaling across fan-out widths.
bench-parallel:
	$(GO) test -run xxx -bench 'DeliveryEngineParallel|PipelineBuildStream' .

# serve boots the bounce-analytics service fed by an in-process
# delivery engine run; Ctrl-C drains the queue and flushes a report.
serve:
	$(GO) run ./cmd/bounced -generate

# bench-serve measures HTTP ingest throughput, classify latency, and
# snapshot cold/warm build times: generate a corpus, replay it with
# loadgen against an in-process server, then re-post 1000 head records
# to time the warm (suffix-only) snapshot. Appends one JSON line to
# BENCH_bounced.json.
bench-serve:
	$(GO) run ./cmd/bouncegen -emails 100000 -out /tmp/bench_corpus.jsonl
	$(GO) run ./cmd/bounced loadgen -in /tmp/bench_corpus.jsonl -spawn -warm 1000 -out BENCH_bounced.json
	@tail -1 BENCH_bounced.json

# cluster-diff is the sharded-vs-single differential: partial-set
# merge properties (associativity, commutativity, random merge
# orders), sharded bounceanalyze report identity, and the 3-shard +
# coordinator topology over real HTTP — every merge order must be
# byte-identical to one node ingesting the full stream, including the
# seed-swept torn-mid-batch chaos variant. See DESIGN.md §10.
cluster-diff:
	$(GO) test -run 'TestPartial|TestUnmarshalPartial|TestShardedPartial|TestCluster' -count=1 -v \
		./internal/analysis/ ./internal/bounced/ .

# bench-merge measures the coordinator's fan-in: decode + merge of K
# shard partial snapshots (K = 1/2/4/16) versus one cold snapshot over
# the same 100k records, with merged bytes asserted identical to the
# unsharded partial set. Appends one JSON line to BENCH_bounced.json.
bench-merge:
	$(GO) run ./cmd/mergebench -out BENCH_bounced.json
	@tail -1 BENCH_bounced.json

# bench-ingest measures the ingest hot path without HTTP: the decode
# micro-benchmarks (with allocation counts) and the ingestbench tool,
# which appends decode throughput + snapshot cold/warm timings to
# BENCH_bounced.json.
bench-ingest:
	$(GO) test -run xxx -bench 'Unmarshal|DecoderDecode|ParallelDecode' -benchmem ./internal/dataset/
	$(GO) run ./cmd/ingestbench -out BENCH_bounced.json
	@tail -1 BENCH_bounced.json

# bench-smoke is the CI regression gate for the ingest hot path: a
# small-corpus ingestbench run appended to BENCH_bounced.json, diffed
# against the previous ingest row, failing if decode allocations exceed
# one heap allocation per record (the arena decoder's budget).
bench-smoke:
	$(GO) test -run xxx -bench 'Unmarshal|DecoderDecode|ParallelDecode' -benchmem ./internal/dataset/
	$(GO) run ./cmd/ingestbench -emails 20000 -out BENCH_bounced.json
	./scripts/bench_compare.sh -b ingest --max-allocs 1.0

# fuzz-decode runs the fast-path-decoder-vs-encoding/json fuzzer for a
# short budget (the committed corpus replays in plain `make test`).
fuzz-decode:
	$(GO) test -fuzz FuzzDecoderMatchesEncodingJSON -fuzztime 60s ./internal/dataset/

# bench-replay measures crash recovery: rebuild-from-checkpoint+tail
# versus a cold replay of the whole WAL, over the same 100k-record log,
# with both end states asserted byte-identical before timing is
# reported. Appends one JSON line to BENCH_bounced.json.
bench-replay:
	$(GO) run ./cmd/replaybench -out BENCH_bounced.json
	@tail -1 BENCH_bounced.json
