GO ?= go

.PHONY: check fmt vet build test race race-parallel bench bench-parallel

# check is the tier-1 gate plus static analysis and formatting.
check: fmt vet build test

# fmt fails if any file is not gofmt-clean.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required for:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector.
race:
	$(GO) test -race ./...

# race-parallel focuses the race detector on the parallel delivery and
# streaming paths (fast enough for every commit).
race-parallel:
	$(GO) test -race -run 'Parallel|WorkerCount|DeliverBatch|Pipe|FromSource|CollectStream' ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# bench-parallel measures DeliverBatch scaling across fan-out widths.
bench-parallel:
	$(GO) test -run xxx -bench 'DeliveryEngineParallel|PipelineBuildStream' .
