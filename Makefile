GO ?= go

.PHONY: check fmt vet build build-cmds test race race-parallel bench bench-parallel serve bench-serve bench-ingest

# check is the tier-1 gate plus static analysis and formatting.
check: fmt vet build build-cmds test

# fmt fails if any file is not gofmt-clean.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required for:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# build-cmds links every binary into bin/ (build ./... alone does not
# link main packages).
build-cmds:
	$(GO) build -o bin/ ./cmd/...

test:
	$(GO) test ./...

# race runs the whole suite under the race detector.
race:
	$(GO) test -race ./...

# race-parallel focuses the race detector on the parallel delivery,
# streaming, decode, and incremental-snapshot paths (fast enough for
# every commit).
race-parallel:
	$(GO) test -race -run 'Parallel|WorkerCount|DeliverBatch|Pipe|FromSource|CollectStream|Incremental|WarmSnapshot|Frozen|Decoder' ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# bench-parallel measures DeliverBatch scaling across fan-out widths.
bench-parallel:
	$(GO) test -run xxx -bench 'DeliveryEngineParallel|PipelineBuildStream' .

# serve boots the bounce-analytics service fed by an in-process
# delivery engine run; Ctrl-C drains the queue and flushes a report.
serve:
	$(GO) run ./cmd/bounced -generate

# bench-serve measures HTTP ingest throughput, classify latency, and
# snapshot cold/warm build times: generate a corpus, replay it with
# loadgen against an in-process server, then re-post 1000 head records
# to time the warm (suffix-only) snapshot. Appends one JSON line to
# BENCH_bounced.json.
bench-serve:
	$(GO) run ./cmd/bouncegen -emails 100000 -out /tmp/bench_corpus.jsonl
	$(GO) run ./cmd/bounced loadgen -in /tmp/bench_corpus.jsonl -spawn -warm 1000 -out BENCH_bounced.json
	@tail -1 BENCH_bounced.json

# bench-ingest measures the ingest hot path without HTTP: the decode
# micro-benchmarks (with allocation counts) and the ingestbench tool,
# which appends decode throughput + snapshot cold/warm timings to
# BENCH_bounced.json.
bench-ingest:
	$(GO) test -run xxx -bench 'Unmarshal|DecoderDecode|ParallelDecode' -benchmem ./internal/dataset/
	$(GO) run ./cmd/ingestbench -out BENCH_bounced.json
	@tail -1 BENCH_bounced.json
