package bounce_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/clock"
	"repro/internal/dataset"
	"repro/internal/ndr"
	"repro/internal/smtp"
	"repro/internal/smtpbridge"
	"repro/internal/world"
)

// TestWireEndToEnd delivers a slice of the generated workload through
// REAL SMTP connections — each receiver domain served by the policy
// bridge on a loopback socket — then rebuilds Figure-3 records from the
// wire replies and runs the full classification pipeline over them.
// This is the subset check DESIGN.md promises: the wire path and the
// in-process simulator share one policy engine, so analysis results
// must be coherent either way.
func TestWireEndToEnd(t *testing.T) {
	w := world.New(world.TinyConfig())
	at := clock.StudyStart.AddDate(0, 0, 30).Add(10 * time.Hour)

	// Serve the five busiest domains over real sockets. The rate-limit
	// stages are ablated through the policy chain's hook: this test
	// funnels weeks of traffic through one loopback client at a single
	// virtual instant, which per-source and per-domain throttles would
	// (correctly) defer wholesale.
	servers := map[string]string{} // domain -> addr
	for _, d := range w.Domains[:5] {
		srv := smtp.NewServer(smtpbridge.Backend(w, d, smtpbridge.Options{At: at, Seed: 7,
			DisableStages: []string{"source-rate", "inbound-rate"}}))
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		servers[d.Name] = srv.Addr().String()
	}

	// Route day-30 submissions addressed to the served domains through
	// the wire; synthesize extra traffic if the day is thin.
	var records []dataset.Record
	sent := 0
	deliver := func(from, to, body string) {
		domain := to[strings.LastIndexByte(to, '@')+1:]
		addr, ok := servers[domain]
		if !ok {
			return
		}
		rep, err := smtp.SendMail(addr, from, to, []byte(body), smtp.SendOptions{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("wire delivery %s: %v", to, err)
		}
		records = append(records, dataset.Record{
			From: from, To: to,
			StartTime: at, EndTime: at.Add(time.Second),
			FromIP:          []string{"127.0.0.1"},
			ToIP:            []string{"127.0.0.1"},
			DeliveryResult:  []string{rep.String()},
			DeliveryLatency: []int64{1000},
			EmailFlag:       "Normal",
		})
		sent++
	}

	for day := 30; day < 60 && sent < 120; day++ {
		for _, sub := range w.EmailsForDay(day) {
			if sent >= 120 {
				break
			}
			deliver(sub.Msg.From.String(), sub.Msg.To.String(), strings.Join(sub.Msg.Tokens, " "))
		}
	}
	// Guarantee known outcomes: existing users, ghosts, spam.
	for name := range servers {
		d := w.DomainByName[name]
		if len(d.UserList) == 0 {
			continue
		}
		deliver("alice@corp.example", d.UserList[0]+"@"+name, "meeting agenda invoice")
		deliver("alice@corp.example", "ghost-wire-test@"+name, "meeting agenda")
		deliver("offers@bulk.example", d.UserList[0]+"@"+name,
			"free-money crypto-double prize winner lottery act-now casino-bonus cheap-meds")
	}
	if len(records) < 20 {
		t.Fatalf("only %d wire deliveries", len(records))
	}

	// The analysis pipeline must classify wire-produced NDRs.
	a := bounce.Analyze(records, bounce.NewEnvironment(w))
	o := a.Overview()
	if o.Total != len(records) {
		t.Fatalf("analysis lost records")
	}
	if o.NonBounced == 0 {
		t.Error("no wire deliveries succeeded")
	}
	if o.HardBounced == 0 {
		t.Error("no wire deliveries bounced (ghost/spam injections should)")
	}
	dist := a.TypeDistribution()
	if dist[ndr.T8NoSuchUser] == 0 && o.AmbiguousBounced == 0 {
		t.Errorf("ghost recipients produced no T8/ambiguous classifications: %v", dist)
	}
	t.Logf("wire corpus: %d emails, %d non / %d soft / %d hard, types %v",
		o.Total, o.NonBounced, o.SoftBounced, o.HardBounced, dist)
}

// TestWireVerdictsMatchSimulatorVerdicts delivers identical envelopes
// through the wire bridge and checks coherence with the mailbox state
// the simulator would apply.
func TestWireVerdictsMatchSimulatorVerdicts(t *testing.T) {
	w := world.New(world.TinyConfig())
	at := clock.StudyStart.AddDate(0, 0, 15).Add(9 * time.Hour)
	var clean *world.ReceiverDomain
	for _, d := range w.Domains {
		p := d.Policy
		if d.Rank >= 11 && !p.AmbiguousNDR && !p.UsesDNSBL && !p.Greylisting &&
			p.TLS != world.TLSMandatory && p.QuirkProb == 0 && len(d.UserList) >= 5 {
			clean = d
			break
		}
	}
	if clean == nil {
		t.Skip("no clean domain")
	}
	// source-rate is ablated: five sends from one loopback identity at
	// one virtual instant would trip the per-source throttle.
	srv := smtp.NewServer(smtpbridge.Backend(w, clean, smtpbridge.Options{At: at, Seed: 3,
		DisableStages: []string{"source-rate"}}))
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	for i, local := range clean.UserList[:5] {
		mbox := clean.Users[local]
		rep, err := smtp.SendMail(addr, fmt.Sprintf("s%d@corp.example", i), local+"@"+clean.Name,
			[]byte("meeting agenda"), smtp.SendOptions{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		wantAccept := !mbox.InactiveAt(at) && !mbox.FullAt(at)
		if got := smtpbridge.Classify(rep) == smtpbridge.Accepted; got != wantAccept {
			t.Errorf("user %s: wire accept=%v, simulator state says %v (%s)", local, got, wantAccept, rep)
		}
	}
}
