package bounce_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/dns"
	"repro/internal/greylist"
	"repro/internal/mail"
	"repro/internal/ndr"
	"repro/internal/policy"
	"repro/internal/simrng"
	"repro/internal/smtp"
	"repro/internal/smtpbridge"
	"repro/internal/spamfilter"
	"repro/internal/world"
)

// chainState is a reference StageState mirroring the bridge's wire
// state: fresh counters, the same clean resolver, no-op spam reports.
type chainState struct {
	rng      *simrng.RNG
	resolver *dns.Resolver
	spf      *auth.SPFEvaluator
	dkim     *auth.DKIMVerifier
	dmarc    *auth.DMARCEvaluator
	counters map[uint64]int
	learned  map[uint64]bool
}

func (st *chainState) RNG() *simrng.RNG            { return st.rng }
func (st *chainState) Resolver() *dns.Resolver     { return st.resolver }
func (st *chainState) SPF() *auth.SPFEvaluator     { return st.spf }
func (st *chainState) DKIM() *auth.DKIMVerifier    { return st.dkim }
func (st *chainState) DMARC() *auth.DMARCEvaluator { return st.dmarc }

func (st *chainState) Bump(key uint64) int {
	st.counters[key]++
	return st.counters[key]
}
func (st *chainState) Peek(key uint64) int { return st.counters[key] }
func (st *chainState) LearnOnce(key uint64) bool {
	if st.learned[key] {
		return true
	}
	st.learned[key] = true
	return false
}
func (st *chainState) ReportSpam(string, time.Time) {}

// TestDifferentialGreylistWindowEdge pins the greylist retry-window
// boundary across the two evaluation paths: a retry arriving exactly
// minDelay after the first attempt — timed so the window also crosses
// a clock.Hour rollover, where the old float64 hour bucketing could
// drift — must be classified identically by the engine chain and the
// smtpbridge wire path: defer, defer 1s early, accept exactly at the
// edge. Options.At is fixed per Backend, so each instant gets its own
// bridge over the same shared world state.
func TestDifferentialGreylistWindowEdge(t *testing.T) {
	w := world.New(world.TinyConfig())
	resolver := dns.NewResolver(w.DNS, nil)
	env := policy.NewEnv(w)
	ablate := []string{"tls", "spamtrap", "quirk"}

	var dom *world.ReceiverDomain
	for _, d := range w.Domains {
		if len(d.UserList) >= 2 {
			dom = d
			break
		}
	}
	if dom == nil {
		t.Fatal("no receiver domain with users")
	}
	// Force greylisting on: tiny worlds adopt it with p=0.018, and the
	// edge semantics are what is under test, not adoption. The hourly
	// rate limit (as low as 1/proxy in tiny worlds) is raised so the
	// repeated attempts cannot trip T7 ahead of the greylist stage.
	dom.Policy.Greylisting = true
	dom.Greylist = greylist.New(300*time.Second, 30*24*time.Hour)
	dom.Policy.PerProxyHourlyLimit = 1000
	minDelay := dom.Greylist.MinDelay()

	// First attempt minDelay before an hour edge deep in the study
	// window (day 200 is past the ~104-day float precision horizon), so
	// the exact-boundary retry lands precisely on the hour rollover.
	hourEdge := clock.StudyStart.AddDate(0, 0, 200).Add(15 * time.Hour)
	first := hourEdge.Add(-minDelay)
	early := hourEdge.Add(-time.Second)
	if clock.Hour(first) == clock.Hour(hourEdge) {
		t.Fatal("test setup: window does not cross an hour rollover")
	}

	ref := &chainState{
		rng:      simrng.New(41),
		resolver: resolver,
		spf:      &auth.SPFEvaluator{Resolver: resolver},
		dkim:     &auth.DKIMVerifier{Resolver: resolver},
		dmarc:    &auth.DMARCEvaluator{Resolver: resolver},
		counters: make(map[uint64]int),
		learned:  make(map[uint64]bool),
	}
	chain := policy.NewChain(env, dom, policy.ChainOptions{Disable: ablate})

	bridge := func(at time.Time) string {
		srv := smtp.NewServer(smtpbridge.Backend(w, dom, smtpbridge.Options{
			At: at, Seed: 11, Resolver: resolver, DisableStages: ablate,
		}))
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		return srv.Addr().String()
	}
	addrFirst, addrEarly, addrEdge := bridge(first), bridge(early), bridge(hourEdge)

	proxy := w.Proxies[0]
	body := "weekly status notes attached"
	// Both sides of one instant evaluate ref-chain first, then the wire
	// re-checks the same shared greylist at the same instant — the same
	// ordering protocol as TestDifferentialChainVsWire.
	check := func(sender, local string, at time.Time, addr, wantStep string, wantAccept bool) {
		t.Helper()
		fromAddr, _ := mail.ParseAddress(sender)
		toAddr, _ := mail.ParseAddress(local + "@" + dom.Name)
		req := &policy.Request{
			From: fromAddr, To: toAddr, MsgID: sender + "|" + wantStep,
			ClientIP: proxy.IP, Proxy: proxy, At: at, First: true,
			RcptCount: 1, Tokens: strings.Fields(body),
		}
		v := chain.Evaluate(ref, req)
		rep, err := smtp.SendMail(addr, sender, toAddr.String(), []byte(body),
			smtp.SendOptions{Helo: proxy.Hostname, Timeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("%s wire: %v", wantStep, err)
		}
		if wantAccept {
			if v.Rejected() {
				t.Fatalf("%s: chain rejects %v, want accept", wantStep, v.Type)
			}
			if !rep.Success() {
				t.Fatalf("%s: chain accepts, wire rejects with %s", wantStep, rep)
			}
			return
		}
		if !v.Rejected() || v.Type != ndr.T6Greylisted {
			t.Fatalf("%s: chain verdict %v, want T6Greylisted rejection", wantStep, v.Type)
		}
		res := chain.Resolve(v, req)
		if rep.Success() {
			t.Fatalf("%s: chain defers, wire accepts", wantStep)
		}
		if rep.Code != res.Code || rep.Enh != res.Enh {
			t.Fatalf("%s: chain resolves %d/%v, wire replied %s", wantStep, res.Code, res.Enh, rep)
		}
	}

	// Senders live in real world sender domains so every stage ahead of
	// greylist (sender DNS, auth, reputation) passes cleanly.
	senderA := "edge-a@" + w.SenderDomains[0].Name
	senderB := "edge-b@" + w.SenderDomains[1%len(w.SenderDomains)].Name

	// Tuple A: first attempt defers, retry exactly at first+minDelay —
	// on the hour rollover — accepts on both paths.
	userA, userB := dom.UserList[0], dom.UserList[1]
	check(senderA, userA, first, addrFirst, "first attempt", false)
	check(senderA, userA, hourEdge, addrEdge, "retry exactly at window edge", true)

	// Tuple B: a retry one second inside the window still defers on
	// both paths (the first-seen clock does not reset).
	check(senderB, userB, first, addrFirst, "tuple B first attempt", false)
	check(senderB, userB, early, addrEarly, "retry 1s before window edge", false)
	check(senderB, userB, hourEdge, addrEdge, "tuple B retry at edge", true)
}

// TestDifferentialChainVsWire is the differential check the policy
// refactor exists to make possible: the SAME chain, evaluated linearly
// (as the delivery engine does) and phase-by-phase over a real SMTP
// conversation (as the bridge does), must produce the identical NDR —
// same bounce type, same template, hence same reply code and enhanced
// code.
//
// Three stages are ablated on BOTH sides, for reasons inherent to the
// wire transport rather than the chain: tls (the loopback server has no
// certificate, so the bridge auto-disables it), spamtrap (it mutates
// the shared blocklist immediately on the wire but via the ordered
// merge in the engine, which would skew later dnsbl verdicts), and
// quirk (pure RNG draws, and the two paths legitimately consume
// different streams). Every deterministic stage — including both rate
// limiters, whose counters must advance in lockstep — runs live.
func TestDifferentialChainVsWire(t *testing.T) {
	w := world.New(world.TinyConfig())
	at := clock.StudyStart.AddDate(0, 0, 25).Add(11 * time.Hour)
	ablate := []string{"tls", "spamtrap", "quirk"}

	// One clean resolver serves both paths; with no fault injection its
	// answers depend only on the DNS zone state at `at`.
	resolver := dns.NewResolver(w.DNS, nil)
	env := policy.NewEnv(w)
	ref := &chainState{
		rng:      simrng.New(41),
		resolver: resolver,
		spf:      &auth.SPFEvaluator{Resolver: resolver},
		dkim:     &auth.DKIMVerifier{Resolver: resolver},
		dmarc:    &auth.DMARCEvaluator{Resolver: resolver},
		counters: make(map[uint64]int),
		learned:  make(map[uint64]bool),
	}

	type servedDomain struct {
		d     *world.ReceiverDomain
		chain *policy.Chain
		addr  string
	}
	var served []servedDomain
	for _, d := range w.Domains {
		if len(d.UserList) == 0 {
			continue
		}
		srv := smtp.NewServer(smtpbridge.Backend(w, d, smtpbridge.Options{
			At: at, Seed: 11, Resolver: resolver, DisableStages: ablate,
		}))
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		chain := policy.NewChain(env, d, policy.ChainOptions{Disable: ablate})
		served = append(served, servedDomain{d, chain, srv.Addr().String()})
		if len(served) == 6 {
			break
		}
	}
	if len(served) == 0 {
		t.Fatal("no domains to serve")
	}

	spamBody := strings.Join(spamfilter.GenerateTokens(simrng.New(5), 0.97, 16), " ")
	bodies := []string{
		"meeting agenda quarterly-report timesheet",
		spamBody,
		"invoice attached please review",
	}
	senders := []string{"ops@corp.example", "news@letters.example"}
	for i, sd := range w.SenderDomains {
		if i == 3 {
			break
		}
		senders = append(senders, fmt.Sprintf("acct%d@%s", i, sd.Name))
	}

	checked, rejected := 0, 0
	for si, sv := range served {
		locals := append([]string{}, sv.d.UserList...)
		if len(locals) > 4 {
			locals = locals[:4]
		}
		locals = append(locals, "ghost-differential")
		for li, local := range locals {
			from := senders[(si+li)%len(senders)]
			to := local + "@" + sv.d.Name
			body := bodies[(si+li)%len(bodies)]
			proxy := w.Proxies[(si*7+li)%len(w.Proxies)]

			// Reference side first: the greylist and the blocklist are
			// shared world state, so evaluation order is part of the
			// protocol (ref inserts the greylist tuple, the wire re-checks
			// it at the same instant and still defers).
			fromAddr, _ := mail.ParseAddress(from)
			toAddr, _ := mail.ParseAddress(to)
			req := &policy.Request{
				From:      fromAddr,
				To:        toAddr,
				MsgID:     from + "|" + to,
				ClientIP:  proxy.IP,
				Proxy:     proxy,
				At:        at,
				First:     true,
				RcptCount: 1,
				Tokens:    strings.Fields(body),
			}
			v := sv.chain.Evaluate(ref, req)

			// Wire side: EHLO as the proxy's hostname so the bridge
			// resolves the same client identity.
			rep, err := smtp.SendMail(sv.addr, from, to, []byte(body),
				smtp.SendOptions{Helo: proxy.Hostname, Timeout: 5 * time.Second})
			if err != nil {
				t.Fatalf("wire %s -> %s: %v", from, to, err)
			}

			if !v.Rejected() {
				if !rep.Success() {
					t.Errorf("%s -> %s via proxy %d: chain accepts, wire rejects with %s",
						from, to, proxy.ID, rep)
				}
				checked++
				continue
			}
			res := sv.chain.Resolve(v, req)
			if rep.Success() {
				t.Errorf("%s -> %s via proxy %d: chain rejects %v (%s), wire accepts",
					from, to, proxy.ID, v.Type, ndr.Catalog[res.Index].Text)
				continue
			}
			if rep.Code != res.Code || rep.Enh != res.Enh {
				t.Errorf("%s -> %s via proxy %d: chain %v resolves %d/%v, wire replied %s",
					from, to, proxy.ID, v.Type, res.Code, res.Enh, rep)
			}
			checked++
			rejected++
		}
	}
	if checked < 20 {
		t.Fatalf("only %d envelopes compared", checked)
	}
	if rejected == 0 {
		t.Error("no rejections exercised (ghost recipients should bounce)")
	}
	t.Logf("differential: %d envelopes, %d rejections, verdicts identical", checked, rejected)
}
