#!/usr/bin/env bash
# bench_compare.sh — diff the last two rows of the bench history file.
#
# BENCH_bounced.json accumulates one JSON line per bench run (loadgen
# "serve" rows plus tagged ingest/merge/replay rows). This script picks
# the newest row of one bench kind, diffs every shared numeric field
# against the previous row of the same kind, and optionally enforces
# the allocation regression gate CI runs on every push.
#
# Usage:
#   scripts/bench_compare.sh                      # compare the newest row's kind
#   scripts/bench_compare.sh -b ingest            # compare the last two ingest rows
#   scripts/bench_compare.sh -b ingest --max-allocs 1.0
#                                                 # also fail if the newest ingest
#                                                 # row's allocs_per_record > 1.0
#   scripts/bench_compare.sh -f other.json -b serve
#
# No jq dependency: field extraction is a plain awk scan for
# "key":number pairs (first occurrence wins, which keeps nested
# per-shard entries from shadowing top-level fields).
set -euo pipefail

FILE=BENCH_bounced.json
BENCH=""
MAX_ALLOCS=""
while [ $# -gt 0 ]; do
	case "$1" in
	-f)
		FILE=$2
		shift 2
		;;
	-b)
		BENCH=$2
		shift 2
		;;
	--max-allocs)
		MAX_ALLOCS=$2
		shift 2
		;;
	-h | --help)
		sed -n '2,18p' "$0"
		exit 0
		;;
	*)
		echo "bench_compare.sh: unknown argument $1 (try --help)" >&2
		exit 2
		;;
	esac
done

if [ ! -f "$FILE" ]; then
	echo "bench_compare.sh: $FILE not found" >&2
	exit 2
fi

awk -v bench="$BENCH" -v maxallocs="$MAX_ALLOCS" '
function extract(line, keys, vals,   n, s, m, sep, k, v) {
	n = 0
	s = line
	while (match(s, /"[A-Za-z_0-9]+":-?[0-9][0-9.eE+-]*/)) {
		m = substr(s, RSTART, RLENGTH)
		sep = index(m, ":")
		k = substr(m, 2, sep - 3)
		v = substr(m, sep + 1) + 0
		if (!(k in vals)) {
			keys[++n] = k
			vals[k] = v
		}
		s = substr(s, RSTART + RLENGTH)
	}
	return n
}
{
	tag = "serve"
	if (match($0, /"bench":"[a-z]+"/)) tag = substr($0, RSTART + 9, RLENGTH - 10)
	prev[tag] = last[tag]
	last[tag] = $0
	lastTag = tag
}
END {
	if (bench == "") bench = lastTag
	if (!(bench in last)) {
		printf "bench_compare.sh: no %s rows in the history\n", bench
		exit 2
	}
	nn = extract(last[bench], nk, nv)
	printf "bench kind: %s\n", bench
	if (prev[bench] == "") {
		printf "only one %s row; nothing to compare against\n", bench
	} else {
		extract(prev[bench], okeys, ov)
		printf "%-34s %16s %16s %10s\n", "field", "previous", "latest", "delta"
		for (i = 1; i <= nn; i++) {
			k = nk[i]
			if (!(k in ov)) continue
			d = "n/a"
			if (ov[k] != 0) d = sprintf("%+.1f%%", 100 * (nv[k] - ov[k]) / ov[k])
			printf "%-34s %16.3f %16.3f %10s\n", k, ov[k], nv[k], d
		}
	}
	if (maxallocs != "") {
		if (!("allocs_per_record" in nv)) {
			printf "FAIL: latest %s row has no allocs_per_record field\n", bench
			exit 1
		}
		if (nv["allocs_per_record"] > maxallocs + 0) {
			printf "FAIL: allocs_per_record %.4f exceeds the %.2f gate\n", \
				nv["allocs_per_record"], maxallocs + 0
			exit 1
		}
		printf "allocs gate ok: %.4f <= %.2f\n", nv["allocs_per_record"], maxallocs + 0
	}
}
' "$FILE"
