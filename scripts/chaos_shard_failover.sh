#!/bin/sh
# chaos_shard_failover.sh — the replicated-shards failover differential
# (make chaos-shard-failover). DESIGN.md §14: composes sharding (§10)
# with replication (§12).
#
# Run A replays a corpus into one memory-only bounced fronted by a
# single-"shard" coordinator and saves the coordinator's merged report
# as the reference. Run B builds two shards, each a replica set — a
# durable semi-sync shard primary, a durable shard-aware standby
# streaming its checkpoint + WAL tail, and a router fronting the pair —
# plus a coordinator fanning in through the two routers. The client
# routes each record to its owning shard's router (idempotent
# X-Batch-Id batches). Mid-stream shard 0's primary is SIGKILLed; its
# standby auto-promotes after the failover timeout, the router
# re-elects it, and the client retries through the outage and finishes
# the stream against the survivor.
#
# Pass requires all of: the standby actually promoted (role=primary at
# a bumped epoch), the router re-elected it, the coordinator's stats
# expose the bumped epoch, the survivors together classified every
# corpus record exactly once (sum of consumed == corpus lines), and the
# coordinator's final merged report is byte-identical to run A.
#
# Knobs: CHAOS_SF_SEED, CHAOS_SF_EMAILS, CHAOS_SF_PORT (9 consecutive
# ports from here: shard0 primary/standby/router, shard1
# primary/standby/router, coordinator, then run A's node+coordinator).
set -eu

SEED="${CHAOS_SF_SEED:-11}"
EMAILS="${CHAOS_SF_EMAILS:-20000}"
PORT="${CHAOS_SF_PORT:-18445}"
P0_URL="http://127.0.0.1:$PORT"
S0_URL="http://127.0.0.1:$((PORT + 1))"
R0_URL="http://127.0.0.1:$((PORT + 2))"
P1_URL="http://127.0.0.1:$((PORT + 3))"
S1_URL="http://127.0.0.1:$((PORT + 4))"
R1_URL="http://127.0.0.1:$((PORT + 5))"
CO_URL="http://127.0.0.1:$((PORT + 6))"
REF_URL="http://127.0.0.1:$((PORT + 7))"
REFC_URL="http://127.0.0.1:$((PORT + 8))"

say() { echo "chaos-shard-failover: $*" >&2; }

WORK=$(mktemp -d)
PIDS=""
cleanup() {
	for pid in $PIDS; do
		kill -9 "$pid" 2>/dev/null || true
	done
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

cd "$(dirname "$0")/.."
say "building binaries"
go build -o "$WORK/bin/" ./cmd/bounced ./cmd/bouncegen
BOUNCED="$WORK/bin/bounced"

"$WORK/bin/bouncegen" -emails "$EMAILS" -seed 5 -out "$WORK/corpus.jsonl"
CORPUS=$(wc -l <"$WORK/corpus.jsonl")

# wait_ready <url> [max-iters]
wait_ready() {
	i=0
	while ! curl -sf "$1/v1/stats" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt "${2:-200}" ]; then
			say "FAIL: server did not come up on $1"
			exit 1
		fi
		sleep 0.05
	done
}

# wait_elected <router-url> <primary-url>
wait_elected() {
	i=0
	while ! curl -sf "$1/v1/router/status" 2>/dev/null | grep -q "\"primary\":[[:space:]]*\"$2\""; do
		i=$((i + 1))
		if [ "$i" -gt 300 ]; then
			say "FAIL: router $1 never elected $2"
			exit 1
		fi
		sleep 0.05
	done
}

# stat_field <url> <json-field>
stat_field() {
	curl -sf "$1/v1/stats" 2>/dev/null |
		sed -n "s/.*\"$2\":[[:space:]]*\([0-9][0-9]*\).*/\1/p" | head -1
}

# --- Run A: uninterrupted single-node reference through a coordinator --
# The reference report comes through a 1-shard coordinator so both runs
# render the same (partial-renderable) section set.
say "run A: memory-only reference behind a 1-shard coordinator"
"$BOUNCED" -addr "127.0.0.1:$((PORT + 7))" -no-env -flush-sections '' \
	>"$WORK/ref.log" 2>&1 &
REF_PID=$!
PIDS="$PIDS $REF_PID"
wait_ready "$REF_URL"
"$BOUNCED" -role coordinator -shards "$REF_URL" -no-env \
	-addr "127.0.0.1:$((PORT + 8))" >"$WORK/refcoord.log" 2>&1 &
REFC_PID=$!
PIDS="$PIDS $REFC_PID"
wait_ready "$REFC_URL"
"$BOUNCED" loadgen -in "$WORK/corpus.jsonl" -url "$REF_URL" -batch 128 \
	-chaos "seed=$SEED" -seed "$SEED" -retries 100000 -out /dev/null \
	2>>"$WORK/client_a.log"
curl -sf "$REFC_URL/v1/report" >"$WORK/report_a.txt"
kill -9 "$REF_PID" "$REFC_PID" 2>/dev/null
wait "$REF_PID" "$REFC_PID" 2>/dev/null || true

# --- Run B: two replica-set shards, kill -9 shard 0's primary ----------
say "run B: 2 shards x (primary + standby + router) + coordinator"
"$BOUNCED" -addr "127.0.0.1:$PORT" -role shard -shard-index 0 -shard-count 2 \
	-no-env -flush-sections '' -data-dir "$WORK/s0-primary" \
	-checkpoint-interval 500ms -repl-ack 1 >"$WORK/s0-primary.log" 2>&1 &
P0_PID=$!
PIDS="$PIDS $P0_PID"
"$BOUNCED" -addr "127.0.0.1:$((PORT + 3))" -role shard -shard-index 1 -shard-count 2 \
	-no-env -flush-sections '' -data-dir "$WORK/s1-primary" \
	-checkpoint-interval 500ms -repl-ack 1 >"$WORK/s1-primary.log" 2>&1 &
P1_PID=$!
PIDS="$PIDS $P1_PID"
wait_ready "$P0_URL"
wait_ready "$P1_URL"
"$BOUNCED" -addr "127.0.0.1:$((PORT + 1))" -role standby -shard-index 0 -shard-count 2 \
	-primary "$P0_URL" -no-env -flush-sections '' -data-dir "$WORK/s0-standby" \
	-checkpoint-interval 500ms -failover-timeout 2s -poll-interval 500ms \
	>"$WORK/s0-standby.log" 2>&1 &
S0_PID=$!
PIDS="$PIDS $S0_PID"
"$BOUNCED" -addr "127.0.0.1:$((PORT + 4))" -role standby -shard-index 1 -shard-count 2 \
	-primary "$P1_URL" -no-env -flush-sections '' -data-dir "$WORK/s1-standby" \
	-checkpoint-interval 500ms -failover-timeout 2s -poll-interval 500ms \
	>"$WORK/s1-standby.log" 2>&1 &
S1_PID=$!
PIDS="$PIDS $S1_PID"
wait_ready "$S0_URL"
wait_ready "$S1_URL"
"$BOUNCED" -role router -peers "$P0_URL,$S0_URL" -addr "127.0.0.1:$((PORT + 2))" \
	>"$WORK/r0.log" 2>&1 &
R0_PID=$!
PIDS="$PIDS $R0_PID"
"$BOUNCED" -role router -peers "$P1_URL,$S1_URL" -addr "127.0.0.1:$((PORT + 5))" \
	>"$WORK/r1.log" 2>&1 &
R1_PID=$!
PIDS="$PIDS $R1_PID"
wait_elected "$R0_URL" "$P0_URL"
wait_elected "$R1_URL" "$P1_URL"
"$BOUNCED" -role coordinator -shards "$R0_URL,$R1_URL" -no-env \
	-addr "127.0.0.1:$((PORT + 6))" >"$WORK/coord.log" 2>&1 &
CO_PID=$!
PIDS="$PIDS $CO_PID"
wait_ready "$CO_URL"

# The client routes each record to its owning shard's router. The rate
# cap holds the stream open long enough for the kill to land mid-flight;
# the retry budget rides through the promotion window's 502/503s.
"$BOUNCED" loadgen -in "$WORK/corpus.jsonl" -shard-urls "$R0_URL,$R1_URL" \
	-batch 128 -rate 6000 -chaos "seed=$SEED" -seed "$SEED" -retries 100000 \
	-no-verify -out /dev/null 2>>"$WORK/client_b.log" &
LOAD_PID=$!

# The kill lands once shard 0's primary has accepted a seeded fraction
# of the corpus (12.5%-32.5% of the total, well inside shard 0's ~50%
# share) — deterministically mid-stream, not at a wall-clock guess.
THRESH=$((EMAILS / 8 + (SEED * 7919) % (EMAILS / 5)))
while :; do
	n=$(stat_field "$P0_URL" accepted) || n=""
	if [ -n "$n" ] && [ "$n" -ge "$THRESH" ]; then
		break
	fi
	if ! kill -0 "$LOAD_PID" 2>/dev/null; then
		say "WARN: stream finished before the kill threshold ($THRESH); killing anyway"
		break
	fi
	sleep 0.02
done
say "kill -9 shard 0 primary at >=$THRESH accepted records"
kill -9 "$P0_PID" 2>/dev/null
wait "$P0_PID" 2>/dev/null || true

# Shard 0's standby must promote itself at a bumped epoch and the
# router must re-elect it; the client keeps talking to the same router
# address throughout.
i=0
while ! curl -sf "$S0_URL/v1/repl/status" 2>/dev/null | grep -q '"role":[[:space:]]*"primary"'; do
	i=$((i + 1))
	if [ "$i" -gt 300 ]; then
		say "FAIL: shard 0 standby never promoted after the primary died"
		sed 's/^/chaos-shard-failover:   standby: /' "$WORK/s0-standby.log" >&2
		exit 1
	fi
	sleep 0.05
done
EPOCH=$(stat_field "$S0_URL" epoch)
if [ -z "$EPOCH" ] || [ "$EPOCH" -lt 2 ]; then
	say "FAIL: promoted standby reports epoch '$EPOCH', want >= 2"
	exit 1
fi
say "shard 0 standby promoted at epoch $EPOCH"
wait_elected "$R0_URL" "$S0_URL"
say "router re-elected the promoted standby"

if ! wait "$LOAD_PID"; then
	say "FAIL: client did not finish the stream after the failover"
	sed 's/^/chaos-shard-failover:   client: /' "$WORK/client_b.log" >&2
	exit 1
fi

# Zero loss, zero double-count: the two survivors together classified
# every corpus record exactly once. (Acked-but-unreplicated loss is
# impossible by construction — -repl-ack 1 holds each ack until the
# standby applied the batch — and an un-acked batch was retried under
# its original ID until the survivor took or deduped it.)
i=0
while :; do
	a=$(stat_field "$S0_URL" consumed) || a=""
	b=$(stat_field "$P1_URL" consumed) || b=""
	[ -n "$a" ] && [ -n "$b" ] && [ "$((a + b))" -eq "$CORPUS" ] && break
	i=$((i + 1))
	if [ "$i" -gt 200 ]; then
		say "FAIL: survivors consumed ${a:-?}+${b:-?} records, corpus has $CORPUS"
		exit 1
	fi
	sleep 0.05
done

# The coordinator's topology view must carry the bumped epoch through
# the router probe.
if ! curl -sf "$CO_URL/v1/stats" | grep -q "\"epoch\":[[:space:]]*$EPOCH"; then
	say "FAIL: coordinator stats do not expose the promoted epoch $EPOCH"
	curl -sf "$CO_URL/v1/stats" | sed 's/^/chaos-shard-failover:   stats: /' >&2
	exit 1
fi

# The merged report must come back through router fan-in — proof the
# coordinator followed the re-election — and match run A byte for byte.
curl -sf "$CO_URL/v1/report" >"$WORK/report_b.txt"
if ! cmp -s "$WORK/report_a.txt" "$WORK/report_b.txt"; then
	cp "$WORK/report_a.txt" /tmp/chaos_shard_failover_reference.txt
	cp "$WORK/report_b.txt" /tmp/chaos_shard_failover_merged.txt
	say "FAIL: reports diverge (dumps in /tmp/chaos_shard_failover_*.txt)"
	exit 1
fi
say "PASS: merged report byte-identical across shard-primary kill -9 + promotion ($(wc -c <"$WORK/report_a.txt") bytes, $CORPUS records)"
