#!/bin/sh
# chaos_failover.sh — the primary-death failover differential
# (make chaos-failover).
#
# Run A replays a corpus into a memory-only bounced and saves the final
# report as the reference. Run B builds a replica set — a durable
# semi-sync primary, a durable standby streaming its checkpoint + WAL
# tail, and a router fronting both — and replays the same corpus
# through the router. Mid-stream the primary is SIGKILLed; the standby
# auto-promotes after its failover timeout, the router re-elects it,
# and the client (idempotent X-Batch-Id batches, retrying through the
# outage) finishes the stream against the survivor.
#
# Pass requires all of: the standby actually promoted (role=primary at
# a bumped epoch on /v1/repl/status), the router-served final report is
# byte-identical to run A (zero acked-record loss, zero double-count),
# and the survivor classified every corpus record exactly once
# (consumed == corpus lines). See DESIGN.md §12.
#
# Knobs: CHAOS_FO_SEED, CHAOS_FO_EMAILS, CHAOS_FO_PORT (3 consecutive
# ports from here: primary, standby, router).
set -eu

SEED="${CHAOS_FO_SEED:-13}"
EMAILS="${CHAOS_FO_EMAILS:-20000}"
PORT="${CHAOS_FO_PORT:-18435}"
P_URL="http://127.0.0.1:$PORT"
S_URL="http://127.0.0.1:$((PORT + 1))"
R_URL="http://127.0.0.1:$((PORT + 2))"

say() { echo "chaos-failover: $*" >&2; }

WORK=$(mktemp -d)
P_PID=""
S_PID=""
R_PID=""
cleanup() {
	for pid in "$P_PID" "$S_PID" "$R_PID"; do
		[ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
	done
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

cd "$(dirname "$0")/.."
say "building binaries"
go build -o "$WORK/bin/" ./cmd/bounced ./cmd/bouncegen
BOUNCED="$WORK/bin/bounced"

"$WORK/bin/bouncegen" -emails "$EMAILS" -seed 5 -out "$WORK/corpus.jsonl"
CORPUS=$(wc -l <"$WORK/corpus.jsonl")

# wait_ready <url> [max-iters]
wait_ready() {
	i=0
	while ! curl -sf "$1/v1/stats" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt "${2:-200}" ]; then
			say "FAIL: server did not come up on $1"
			exit 1
		fi
		sleep 0.05
	done
}

# stat_field <url> <json-field>
stat_field() {
	curl -sf "$1/v1/stats" 2>/dev/null |
		sed -n "s/.*\"$2\":[[:space:]]*\([0-9][0-9]*\).*/\1/p" | head -1
}

# feed <url> replays the corpus with idempotent batch IDs and a retry
# budget sized for a failover window: the router answers 502/503 while
# the standby promotes, and the client hot-retries through it. The seed
# fixes the batch-ID namespace, so a batch whose ack died with the
# primary is re-sent under the same ID and dedups on the survivor
# (semi-sync already applied it there). The rate cap holds the stream
# open long enough for the kill to land mid-flight.
feed() {
	"$BOUNCED" loadgen -in "$WORK/corpus.jsonl" -url "$1" -batch 128 \
		-rate 6000 -chaos "seed=$SEED" -seed "$SEED" -retries 100000 \
		-no-verify -out /dev/null 2>>"$WORK/client.log"
}

# --- Run A: uninterrupted reference -----------------------------------
say "run A: memory-only reference"
"$BOUNCED" -addr "127.0.0.1:$PORT" -no-env -flush-sections '' \
	>"$WORK/a.log" 2>&1 &
P_PID=$!
wait_ready "$P_URL"
feed "$P_URL"
curl -sf "$P_URL/v1/report?section=all" >"$WORK/report_a.txt"
kill -9 "$P_PID" 2>/dev/null
wait "$P_PID" 2>/dev/null || true
P_PID=""

# --- Run B: replica set, kill -9 the primary mid-stream ---------------
say "run B: primary + standby + router"
"$BOUNCED" -addr "127.0.0.1:$PORT" -no-env -flush-sections '' \
	-data-dir "$WORK/primary" -checkpoint-interval 500ms -repl-ack 1 \
	>"$WORK/primary.log" 2>&1 &
P_PID=$!
wait_ready "$P_URL"
"$BOUNCED" -addr "127.0.0.1:$((PORT + 1))" -role standby -primary "$P_URL" \
	-no-env -flush-sections '' -data-dir "$WORK/standby" \
	-checkpoint-interval 500ms -failover-timeout 2s -poll-interval 500ms \
	>"$WORK/standby.log" 2>&1 &
S_PID=$!
wait_ready "$S_URL"
"$BOUNCED" -role router -peers "$P_URL,$S_URL" -addr "127.0.0.1:$((PORT + 2))" \
	>"$WORK/router.log" 2>&1 &
R_PID=$!
i=0
while ! curl -sf "$R_URL/v1/router/status" 2>/dev/null | grep -q "\"primary\":[[:space:]]*\"$P_URL\""; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		say "FAIL: router never elected the primary"
		exit 1
	fi
	sleep 0.05
done

feed "$R_URL" &
LOAD_PID=$!

# The kill lands once the primary has accepted a seeded fraction of the
# corpus (between 25% and 65%) — deterministically mid-stream, not at a
# wall-clock guess.
THRESH=$((EMAILS / 4 + (SEED * 7919) % (EMAILS * 2 / 5)))
while :; do
	n=$(stat_field "$P_URL" accepted) || n=""
	if [ -n "$n" ] && [ "$n" -ge "$THRESH" ]; then
		break
	fi
	if ! kill -0 "$LOAD_PID" 2>/dev/null; then
		say "WARN: stream finished before the kill threshold ($THRESH); killing anyway"
		break
	fi
	sleep 0.02
done
say "kill -9 primary at >=$THRESH accepted records"
kill -9 "$P_PID" 2>/dev/null
wait "$P_PID" 2>/dev/null || true
P_PID=""

# The standby must promote itself (failover-timeout) and answer as the
# primary of a bumped epoch; the router re-elects it and the client
# finishes the stream through the same address it started with.
i=0
while ! curl -sf "$S_URL/v1/repl/status" 2>/dev/null | grep -q '"role":[[:space:]]*"primary"'; do
	i=$((i + 1))
	if [ "$i" -gt 300 ]; then
		say "FAIL: standby never promoted after the primary died"
		sed 's/^/chaos-failover:   standby: /' "$WORK/standby.log" >&2
		exit 1
	fi
	sleep 0.05
done
EPOCH=$(stat_field "$S_URL" epoch)
if [ -z "$EPOCH" ] || [ "$EPOCH" -lt 2 ]; then
	say "FAIL: promoted standby reports epoch '$EPOCH', want >= 2"
	exit 1
fi
say "standby promoted at epoch $EPOCH"

if ! wait "$LOAD_PID"; then
	say "FAIL: client did not finish the stream after the failover"
	sed 's/^/chaos-failover:   client: /' "$WORK/client.log" >&2
	exit 1
fi

# Zero loss, zero double-count: the survivor classified every corpus
# record exactly once. (Acked-but-unreplicated loss is impossible by
# construction — -repl-ack 1 means no ack leaves before the standby
# applied the batch — and an un-acked batch was retried under its
# original ID until the survivor took or deduped it.)
i=0
while :; do
	n=$(stat_field "$S_URL" consumed) || n=""
	[ -n "$n" ] && [ "$n" -eq "$CORPUS" ] && break
	i=$((i + 1))
	if [ "$i" -gt 200 ]; then
		say "FAIL: survivor consumed $n records, corpus has $CORPUS"
		exit 1
	fi
	sleep 0.05
done

# The report must come back through the router — proof it re-elected
# the promoted standby — and match run A byte for byte.
curl -sf "$R_URL/v1/report?section=all" >"$WORK/report_b.txt"
if ! cmp -s "$WORK/report_a.txt" "$WORK/report_b.txt"; then
	cp "$WORK/report_a.txt" /tmp/chaos_failover_reference.txt
	cp "$WORK/report_b.txt" /tmp/chaos_failover_survivor.txt
	say "FAIL: reports diverge (dumps in /tmp/chaos_failover_*.txt)"
	exit 1
fi
say "PASS: report byte-identical across primary kill -9 + promotion ($(wc -c <"$WORK/report_a.txt") bytes, $CORPUS records)"
