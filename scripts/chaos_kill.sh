#!/bin/sh
# chaos_kill.sh — the kill -9 crash-recovery differential (make chaos-kill).
#
# Run A replays a corpus into a memory-only bounced and saves the final
# report as the reference. Run B replays the same corpus into a durable
# bounced (-data-dir) that is SIGKILLed at a seeded point mid-stream and
# restarted on the same directory; the client sends idempotent
# X-Batch-Id batches and retries through the outage, so a batch whose
# ack was lost in the crash dedups instead of double-counting.
#
# Pass requires both: the two final reports are byte-identical (zero
# loss, zero double-count), and run B's second boot recovered from a
# checkpoint — i.e. it replayed only the WAL tail, not the whole log.
# See DESIGN.md §11.
#
# Knobs: CHAOS_KILL_SEED, CHAOS_KILL_EMAILS, CHAOS_KILL_PORT.
set -eu

SEED="${CHAOS_KILL_SEED:-11}"
EMAILS="${CHAOS_KILL_EMAILS:-20000}"
PORT="${CHAOS_KILL_PORT:-18425}"
URL="http://127.0.0.1:$PORT"

say() { echo "chaos-kill: $*" >&2; }

WORK=$(mktemp -d)
SRV_PID=""
cleanup() {
	[ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
	rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

cd "$(dirname "$0")/.."
say "building binaries"
go build -o "$WORK/bin/" ./cmd/bounced ./cmd/bouncegen
BOUNCED="$WORK/bin/bounced"

"$WORK/bin/bouncegen" -emails "$EMAILS" -seed 5 -out "$WORK/corpus.jsonl"

wait_ready() {
	i=0
	while ! curl -sf "$URL/v1/stats" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 200 ]; then
			say "FAIL: server did not come up on $URL"
			exit 1
		fi
		sleep 0.05
	done
}

accepted() {
	curl -sf "$URL/v1/stats" 2>/dev/null |
		sed -n 's/.*"accepted":[[:space:]]*\([0-9][0-9]*\).*/\1/p' | head -1
}

# feed replays the corpus with idempotent batch IDs and a retry budget
# sized for a restart window. The seed fixes the batch-ID namespace, so
# a re-sent batch after the crash carries the ID the server already saw.
# The rate cap holds the stream open for a few seconds — long enough
# for the kill to land mid-flight instead of after the last batch.
feed() {
	"$BOUNCED" loadgen -in "$WORK/corpus.jsonl" -url "$URL" -batch 128 \
		-rate 6000 -chaos "seed=$SEED" -seed "$SEED" -retries 10000 \
		-no-verify -out /dev/null 2>>"$WORK/client.log"
}

# --- Run A: uninterrupted reference -----------------------------------
say "run A: memory-only reference"
"$BOUNCED" -addr "127.0.0.1:$PORT" -no-env -flush-sections '' \
	>"$WORK/a.log" 2>&1 &
SRV_PID=$!
wait_ready
feed
curl -sf "$URL/v1/report?section=all" >"$WORK/report_a.txt"
kill -9 "$SRV_PID" 2>/dev/null
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

# --- Run B: durable, kill -9 mid-stream, restart, finish --------------
DATA="$WORK/data"
say "run B: durable server on $DATA"
"$BOUNCED" -addr "127.0.0.1:$PORT" -no-env -flush-sections '' \
	-data-dir "$DATA" -checkpoint-interval 500ms >"$WORK/b1.log" 2>&1 &
SRV_PID=$!
wait_ready
feed &
LOAD_PID=$!

# The kill lands once the server has accepted a seeded fraction of the
# corpus (between 25% and 65%) — deterministically mid-stream, not at a
# wall-clock guess.
THRESH=$((EMAILS / 4 + (SEED * 7919) % (EMAILS * 2 / 5)))
while :; do
	n=$(accepted) || n=""
	if [ -n "$n" ] && [ "$n" -ge "$THRESH" ]; then
		break
	fi
	if ! kill -0 "$LOAD_PID" 2>/dev/null; then
		say "WARN: stream finished before the kill threshold ($THRESH); killing anyway"
		break
	fi
	sleep 0.02
done
say "kill -9 at >=$THRESH accepted records"
kill -9 "$SRV_PID" 2>/dev/null
wait "$SRV_PID" 2>/dev/null || true

say "restarting on the same data dir (client is retrying meanwhile)"
"$BOUNCED" -addr "127.0.0.1:$PORT" -no-env -flush-sections '' \
	-data-dir "$DATA" -checkpoint-interval 500ms >"$WORK/b2.log" 2>&1 &
SRV_PID=$!
if ! wait "$LOAD_PID"; then
	say "FAIL: client did not finish the stream after the restart"
	sed 's/^/chaos-kill:   client: /' "$WORK/client.log" >&2
	exit 1
fi
wait_ready
curl -sf "$URL/v1/report?section=all" >"$WORK/report_b.txt"

# The second boot must prove it came back through the recovery path,
# from a checkpoint (WAL-tail replay only, not a cold full-log replay).
if ! grep 'recovered from' "$WORK/b2.log" >&2; then
	say "FAIL: second boot did not log a recovery"
	exit 1
fi
if grep -q 'checkpoint at 0 records' "$WORK/b2.log"; then
	say "FAIL: second boot found no checkpoint (cold full-log replay)"
	exit 1
fi

if ! cmp -s "$WORK/report_a.txt" "$WORK/report_b.txt"; then
	cp "$WORK/report_a.txt" /tmp/chaos_kill_reference.txt
	cp "$WORK/report_b.txt" /tmp/chaos_kill_crashed.txt
	say "FAIL: reports diverge (dumps in /tmp/chaos_kill_*.txt)"
	exit 1
fi
say "PASS: report byte-identical across kill -9 ($(wc -c <"$WORK/report_a.txt") bytes)"
