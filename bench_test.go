// Benchmarks regenerating every table and figure of the paper, plus the
// ablation studies DESIGN.md calls out. Each table/figure bench measures
// the analysis step that produces it over a shared mid-size corpus;
// custom metrics report the headline statistic so `go test -bench` output
// doubles as a compact reproduction sheet.
package bounce_test

import (
	"sync"
	"testing"

	"repro"
	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/delivery"
	"repro/internal/drain"
	"repro/internal/ebrc"
	"repro/internal/ndr"
	"repro/internal/simrng"
	"repro/internal/squat"
	"repro/internal/world"
)

// benchStudy is built once and shared: 30K emails keeps every bench
// meaningful while the full suite stays fast.
var (
	benchOnce  sync.Once
	benchSt    *bounce.Study
	benchWorld *world.World
)

func study(b *testing.B) *bounce.Study {
	b.Helper()
	benchOnce.Do(func() {
		cfg := world.DefaultConfig()
		cfg.TotalEmails = 30_000
		benchSt = bounce.Run(bounce.Options{Config: cfg})
		benchWorld = benchSt.World
	})
	return benchSt
}

func BenchmarkWorldGeneration(b *testing.B) {
	cfg := world.TinyConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		_ = world.New(cfg)
	}
}

func BenchmarkDeliveryEngine(b *testing.B) {
	w := world.New(world.TinyConfig())
	e := delivery.New(w)
	subs := w.EmailsForDay(10)
	if len(subs) == 0 {
		b.Fatal("no submissions")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Deliver(subs[i%len(subs)])
	}
}

// BenchmarkDeliveryEngineParallel measures DeliverBatch throughput at
// several fan-out widths over a pregenerated multi-day workload. The
// dataset is identical at every width; on a 4+ core machine workers=4
// should run ≥2x faster than workers=1 (on a single core the widths
// track each other — the bench then measures fan-out overhead).
func BenchmarkDeliveryEngineParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(benchName("workers=", workers), func(b *testing.B) {
			b.ReportAllocs()
			emails := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// Worlds are single-use (workload generation consumes
				// their RNG streams), so each iteration rebuilds one.
				cfg := world.TinyConfig()
				cfg.Seed = 42
				w := world.New(cfg)
				e := delivery.New(w)
				var subs []*world.Submission
				for day := 0; day < 90; day++ {
					subs = append(subs, w.EmailsForDay(day)...)
				}
				emails += len(subs)
				b.StartTimer()
				e.DeliverBatch(subs, workers, func(dataset.Record, *world.Submission, delivery.Truth) {})
			}
			b.ReportMetric(float64(emails)/b.Elapsed().Seconds(), "emails/s")
		})
	}
}

func BenchmarkPipelineBuild(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.BuildPipeline(s.Records.Flatten(), analysis.DefaultPipelineConfig())
	}
}

// BenchmarkPipelineBuildStream trains the pipeline through the
// streaming builder — same work as BenchmarkPipelineBuild but via the
// RecordSource path bounce.Run uses.
func BenchmarkPipelineBuildStream(b *testing.B) {
	s := study(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.BuildPipelineFrom(dataset.NewSliceSource(s.Records.Flatten()), analysis.DefaultPipelineConfig())
	}
}

// ---- Overview (Section 4.1) ----

func BenchmarkOverview(b *testing.B) {
	s := study(b)
	var o analysis.Overview
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o = s.Analysis.Overview()
	}
	b.ReportMetric(100*float64(o.Bounced())/float64(o.Total), "%bounced")
	b.ReportMetric(o.SoftAvgAttempts, "soft-attempts")
}

// ---- Table 1 ----

func BenchmarkTable1Classification(b *testing.B) {
	s := study(b)
	var dist map[ndr.Type]int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist = s.Analysis.TypeDistribution()
	}
	o := s.Analysis.Overview()
	b.ReportMetric(100*float64(dist[ndr.T5Blocklisted])/float64(o.Bounced()), "%T5")
}

// ---- Table 2 ----

func BenchmarkTable2RootCauses(b *testing.B) {
	s := study(b)
	var t analysis.RootCauseTable
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t = s.Analysis.RootCauses(s.Detections)
	}
	b.ReportMetric(100*float64(t.CauseTotal(analysis.CauseSpamPolicy))/float64(t.TotalBounced), "%spam-policy")
}

// ---- Table 3 ----

func BenchmarkTable3Domains(b *testing.B) {
	s := study(b)
	var rows []analysis.DomainStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = s.Analysis.TopDomains(10)
	}
	if rows[0].Domain != "gmail.com" {
		b.Fatalf("top domain %s", rows[0].Domain)
	}
}

// ---- Table 4 ----

func BenchmarkTable4ASes(b *testing.B) {
	s := study(b)
	var rows []analysis.ASStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = s.Analysis.TopASes(10)
	}
	if rows[0].ASN != 8075 { // Microsoft hosts the most MX, like Table 4
		b.Fatalf("top AS %d", rows[0].ASN)
	}
}

// ---- Table 5 ----

func BenchmarkTable5Countries(b *testing.B) {
	s := study(b)
	var rows []analysis.CountryStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = s.Analysis.CountryBounces(10)
	}
	if len(rows) == 0 {
		b.Fatal("no countries")
	}
}

// ---- Table 6 ----

func BenchmarkTable6Ambiguous(b *testing.B) {
	s := study(b)
	var rows []analysis.AmbiguousTemplate
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = s.Analysis.AmbiguousTemplates()
	}
	if len(rows) == 0 {
		b.Fatal("no ambiguous templates")
	}
}

// ---- Figure 4 ----

func BenchmarkFig4GeoDistribution(b *testing.B) {
	s := study(b)
	var rows []analysis.MTACountry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = s.Analysis.MTACountryDistribution()
	}
	if rows[0].Country != "US" { // Figure 4: US hosts the most MTAs
		b.Fatalf("top country %s", rows[0].Country)
	}
	b.ReportMetric(rows[0].Share*100, "%US")
}

// ---- Figure 5 ----

func BenchmarkFig5Timeline(b *testing.B) {
	s := study(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Analysis.Timeline()
	}
}

// ---- Figure 6 ----

func BenchmarkFig6Blocklist(b *testing.B) {
	s := study(b)
	var f analysis.BlocklistFigure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = s.Analysis.BlocklistFigure()
	}
	b.ReportMetric(f.AvgListed, "proxies-listed")
	b.ReportMetric(f.NormalShare*100, "%normal-blocked")
}

// ---- Figure 7 ----

func BenchmarkFig7Durations(b *testing.B) {
	s := study(b)
	var f analysis.DurationsFigure
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f = s.Analysis.Durations(s.Detections)
	}
	b.ReportMetric(f.MXRecords.MedianDays(), "mx-median-days")
}

// ---- Figure 8 ----

func BenchmarkFig8InfraMatrix(b *testing.B) {
	s := study(b)
	var m analysis.InfraMatrix
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m = s.Analysis.InfraMatrix(10, 20)
	}
	if len(m.ReceiverCCs) == 0 {
		b.Fatal("empty matrix")
	}
}

// ---- Figure 9 / Section 5 ----

func BenchmarkFig9SquatTimeline(b *testing.B) {
	s := study(b)
	var r *squat.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = squat.Scan(s.Analysis, s.Detections, squat.DefaultConfig())
	}
	b.ReportMetric(float64(r.VulnerableCount), "vuln-domains")
}

func BenchmarkSquatFunnel(b *testing.B) {
	s := study(b)
	cfg := squat.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = squat.Scan(s.Analysis, nil, cfg) // includes fresh detections
	}
}

// ---- Figure 10 / Appendix C ----

func BenchmarkFig10Latency(b *testing.B) {
	s := study(b)
	var l analysis.LatencyStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l = s.Analysis.LatencyByCountry(10)
	}
	b.ReportMetric(l.GlobalMedianMS/1000, "global-median-s")
}

// ---- Section 4.3.1 ----

func BenchmarkSTARTTLSPolicy(b *testing.B) {
	s := study(b)
	var st analysis.STARTTLSStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = s.Analysis.STARTTLS()
	}
	b.ReportMetric(st.Top100Share*100, "%top100-mandate")
}

// ---- Section 4.2.1 ----

func BenchmarkAttackerAnalysis(b *testing.B) {
	s := study(b)
	var d *analysis.Detections
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d = s.Analysis.Detect()
	}
	b.ReportMetric(float64(len(d.BulkSpamSenders)), "bulk-senders")
}

// ---- EBRC (Section 3.2 evaluation) ----

func ebrcCorpus(n int, seed uint64) []ebrc.Sample {
	rng := simrng.New(seed)
	var out []ebrc.Sample
	for _, typ := range ndr.AllTypes {
		for _, ti := range ndr.NonAmbiguousTemplatesFor(typ) {
			for k := 0; k < n; k++ {
				p := ndr.Params{
					Addr: "u@d.com", Local: "u", Domain: "d.com",
					IP: "9.1.2.3", MX: "mx.d.com", BL: "Spamhaus",
					Vendor: "v", Sec: "60", Size: "1",
				}
				_ = k
				p.Vendor = p.Vendor + string(rune('a'+rng.IntN(26)))
				out = append(out, ebrc.Sample{Text: ndr.Catalog[ti].Render(p), Type: typ})
			}
		}
	}
	return out
}

func BenchmarkEBRCTrain(b *testing.B) {
	corpus := ebrcCorpus(30, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ebrc.Train(corpus)
	}
}

func BenchmarkEBRCPredict(b *testing.B) {
	cls := ebrc.Train(ebrcCorpus(30, 1))
	line := "550-5.1.1 bob@b.com Email address could not be found, or was misspelled (x91)"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls.Predict(line)
	}
}

// ---- Ablations ----

// BenchmarkAblationRetryBudget sweeps Coremail's retry budget and
// reports the soft-recovery rate: the share of first-attempt failures
// eventually delivered. The paper recommends at least three attempts.
func BenchmarkAblationRetryBudget(b *testing.B) {
	for _, attempts := range []int{1, 2, 3, 5, 8} {
		b.Run(benchName("attempts", attempts), func(b *testing.B) {
			var recovered, failed float64
			for i := 0; i < b.N; i++ {
				cfg := world.TinyConfig()
				cfg.Seed = 42
				w := world.New(cfg)
				e := delivery.New(w)
				e.MaxAttempts = attempts
				recovered, failed = 0, 0
				e.Run(func(rec dataset.Record, _ *world.Submission, _ delivery.Truth) {
					switch rec.BounceDegree() {
					case dataset.SoftBounced:
						recovered++
					case dataset.HardBounced:
						failed++
					}
				})
			}
			if recovered+failed > 0 {
				b.ReportMetric(100*recovered/(recovered+failed), "%recovered")
			}
		})
	}
}

// BenchmarkAblationProxyPinning compares random-proxy retries against
// pinned-proxy retries (the greylist-friendly remediation Coremail
// promised in the paper).
func BenchmarkAblationProxyPinning(b *testing.B) {
	for _, pinned := range []bool{false, true} {
		name := "random"
		if pinned {
			name = "pinned"
		}
		b.Run(name, func(b *testing.B) {
			var greylistBounced float64
			for i := 0; i < b.N; i++ {
				cfg := world.TinyConfig()
				cfg.Seed = 42
				cfg.GreylistAdoptionRate = 0.2 // amplify the effect
				w := world.New(cfg)
				e := delivery.New(w)
				e.PinProxy = pinned
				greylistBounced = 0
				e.Run(func(rec dataset.Record, _ *world.Submission, truth delivery.Truth) {
					if rec.Succeeded() {
						return
					}
					for _, t := range truth.AttemptTypes {
						if t == ndr.T6Greylisted {
							greylistBounced++
							break
						}
					}
				})
			}
			b.ReportMetric(greylistBounced, "greylist-hard")
		})
	}
}

// BenchmarkAblationSpamOnce compares the "deliver spam once" policy
// against full retries: the extra deliveries spam retries would burn
// (the filter-disagreement cost of Section 4.2.2).
func BenchmarkAblationSpamOnce(b *testing.B) {
	for _, once := range []bool{true, false} {
		name := "spam-once"
		if !once {
			name = "spam-retry"
		}
		b.Run(name, func(b *testing.B) {
			var attempts, delivered float64
			for i := 0; i < b.N; i++ {
				cfg := world.TinyConfig()
				cfg.Seed = 42
				w := world.New(cfg)
				e := delivery.New(w)
				attempts, delivered = 0, 0
				e.Run(func(rec dataset.Record, sub *world.Submission, _ delivery.Truth) {
					if rec.EmailFlag != "Spam" {
						return
					}
					if !once {
						// Simulate full-retry policy by re-delivering the
						// flagged message without the spam short-circuit.
						msg := *sub.Msg
						msg.Flag = "Normal"
						sub2 := *sub
						sub2.Msg = &msg
						rec2, _ := e.Deliver(&sub2)
						attempts += float64(rec2.Attempts())
						if rec2.Succeeded() {
							delivered++
						}
						return
					}
					attempts += float64(rec.Attempts())
					if rec.Succeeded() {
						delivered++
					}
				})
			}
			b.ReportMetric(attempts, "spam-attempts")
			b.ReportMetric(delivered, "spam-delivered")
		})
	}
}

// BenchmarkAblationDrainDepth sweeps the Drain tree depth and similarity
// threshold, reporting the mined template count (the paper uses the
// defaults from the Drain paper).
func BenchmarkAblationDrainDepth(b *testing.B) {
	s := study(b)
	var lines []string
	for i := 0; i < s.Records.Len(); i++ {
		lines = append(lines, s.Records.At(i).NDRs()...)
		if len(lines) > 20000 {
			break
		}
	}
	for _, cfg := range []drain.Config{
		{Depth: 3, SimThreshold: 0.4},
		{Depth: 4, SimThreshold: 0.4},
		{Depth: 5, SimThreshold: 0.4},
		{Depth: 4, SimThreshold: 0.6},
		{Depth: 4, SimThreshold: 0.8},
	} {
		b.Run(benchName("depth", cfg.Depth)+"-sim"+benchName("", int(cfg.SimThreshold*10)), func(b *testing.B) {
			var groups int
			for i := 0; i < b.N; i++ {
				p := drain.New(cfg)
				for _, l := range lines {
					p.Train(l)
				}
				groups = p.NumGroups()
			}
			b.ReportMetric(float64(groups), "templates")
		})
	}
}

// BenchmarkAblationEBRCTrainingSize sweeps the per-type training budget
// (the paper uses 4,000 per type).
func BenchmarkAblationEBRCTrainingSize(b *testing.B) {
	test := ebrcCorpus(10, 99)
	for _, n := range []int{2, 5, 20, 50} {
		b.Run(benchName("samples", n), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				cls := ebrc.Train(ebrcCorpus(n, uint64(i+1)))
				cm := ebrc.NewConfusion(cls.Classes())
				for _, s := range test {
					pred, _ := cls.Predict(s.Text)
					cm.Add(s.Type, pred)
				}
				acc = cm.Accuracy()
			}
			b.ReportMetric(acc*100, "%accuracy")
		})
	}
}

func benchName(prefix string, n int) string {
	digits := ""
	if n == 0 {
		digits = "0"
	}
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return prefix + digits
}

// BenchmarkAblationGreylistPrefix compares exact-IP greylist tuples (the
// paper's strict assumption) against the common /24 deployment, which
// forgives retries from neighboring proxies in the same subnet.
func BenchmarkAblationGreylistPrefix(b *testing.B) {
	for _, bits := range []int{0, 24, 16} {
		b.Run(benchName("prefix", bits), func(b *testing.B) {
			var deferred, hard float64
			for i := 0; i < b.N; i++ {
				cfg := world.TinyConfig()
				cfg.Seed = 42
				cfg.GreylistAdoptionRate = 0.2
				cfg.GreylistPrefixBits = bits
				w := world.New(cfg)
				e := delivery.New(w)
				deferred, hard = 0, 0
				e.Run(func(rec dataset.Record, _ *world.Submission, truth delivery.Truth) {
					saw := false
					for _, t := range truth.AttemptTypes {
						if t == ndr.T6Greylisted {
							saw = true
						}
					}
					if saw {
						deferred++
						if !rec.Succeeded() {
							hard++
						}
					}
				})
			}
			b.ReportMetric(deferred, "deferred")
			b.ReportMetric(hard, "greylist-hard")
		})
	}
}
