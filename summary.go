package bounce

import (
	"encoding/json"
	"io"

	"repro/internal/squat"
	"repro/internal/stats"
)

// Summary is the machine-readable digest of a study: the headline
// numbers of every reproduced table and figure, suitable for JSON
// export and regression tracking across seeds or code changes.
type Summary struct {
	Emails        int     `json:"emails"`
	NonBouncedPct float64 `json:"non_bounced_pct"`
	SoftPct       float64 `json:"soft_bounced_pct"`
	HardPct       float64 `json:"hard_bounced_pct"`
	SoftAttempts  float64 `json:"soft_avg_attempts"`
	AmbiguousPct  float64 `json:"ambiguous_pct_of_bounced"`
	NoEnhCodePct  float64 `json:"ndr_without_enhanced_code_pct"`

	DrainTemplates int     `json:"drain_templates"`
	LabeledTop     int     `json:"labeled_templates"`
	LabelCoverage  float64 `json:"label_coverage_pct"`

	// TypeSharePct maps T1..T16 to its share of bounced emails.
	TypeSharePct map[string]float64 `json:"type_share_pct"`

	TopDomains []DomainSummary `json:"top_domains"`
	TopASes    []ASSummary     `json:"top_ases"`

	BlocklistAvgListed   float64 `json:"blocklist_avg_listed_proxies"`
	BlocklistNormalPct   float64 `json:"blocklist_normal_share_pct"`
	BlocklistRecoveryPct float64 `json:"blocklist_recovery_pct"`

	AuthFixMeanDays    float64 `json:"auth_fix_mean_days"`
	MXFixMedianDays    float64 `json:"mx_fix_median_days"`
	FullFixMedianDays  float64 `json:"mailbox_full_fix_median_days"`
	GlobalMedianLatS   float64 `json:"global_median_latency_s"`
	STARTTLSTop100Pct  float64 `json:"starttls_top100_mandate_pct"`
	FilterSenderDisPct float64 `json:"filter_sender_disagree_pct"`
	FilterRcvrDisPct   float64 `json:"filter_receiver_disagree_pct"`

	GuessHitRatePct float64 `json:"guess_hit_rate_pct"`
	BulkHardPct     float64 `json:"bulk_spam_hard_pct"`

	UsernameTypos int `json:"verified_username_typos"`
	DomainTypos   int `json:"matched_domain_typos"`

	VulnerableDomains    int     `json:"vulnerable_domains"`
	VulnerableUsernames  int     `json:"vulnerable_usernames"`
	UsernameVulnShare    float64 `json:"username_registrable_pct"`
	SquatExposedSenders  int     `json:"squat_exposed_senders"`
	SquatExposedEmails   int     `json:"squat_exposed_emails"`
	ReRegisteredAtAudit  int     `json:"reregistered_at_audit"`
	RegistrantChangedNum int     `json:"registrant_changed"`
}

// DomainSummary is one Table-3 row in the digest.
type DomainSummary struct {
	Domain  string  `json:"domain"`
	Emails  int     `json:"emails"`
	HardPct float64 `json:"hard_pct"`
	SoftPct float64 `json:"soft_pct"`
}

// ASSummary is one Table-4 row in the digest.
type ASSummary struct {
	ASN     int     `json:"asn"`
	Org     string  `json:"org"`
	Emails  int     `json:"emails"`
	HardPct float64 `json:"hard_pct"`
	SoftPct float64 `json:"soft_pct"`
}

// Summary computes the digest (running the squat scan as part of it).
func (s *Study) Summary() Summary {
	a := s.Analysis
	o := a.Overview()
	out := Summary{
		Emails:        o.Total,
		NonBouncedPct: stats.Pct(o.NonBounced, o.Total),
		SoftPct:       stats.Pct(o.SoftBounced, o.Total),
		HardPct:       stats.Pct(o.HardBounced, o.Total),
		SoftAttempts:  o.SoftAvgAttempts,
		AmbiguousPct:  stats.Pct(o.AmbiguousBounced, o.Bounced()),
		NoEnhCodePct:  a.NoEnhancedCodeShare() * 100,
		TypeSharePct:  map[string]float64{},
	}
	out.DrainTemplates = a.Pipeline.NumTemplates()
	labeled, cov := a.Pipeline.ManualLabelStats()
	out.LabeledTop = labeled
	out.LabelCoverage = cov * 100

	bounced := o.Bounced() - o.AmbiguousBounced
	for typ, n := range a.TypeDistribution() {
		out.TypeSharePct[typ.String()] = stats.Pct(n, bounced)
	}
	for _, d := range a.TopDomains(10) {
		out.TopDomains = append(out.TopDomains, DomainSummary{
			Domain: d.Domain, Emails: d.Emails, HardPct: d.HardPct(), SoftPct: d.SoftPct(),
		})
	}
	for _, as := range a.TopASes(10) {
		out.TopASes = append(out.TopASes, ASSummary{
			ASN: as.ASN, Org: as.Org, Emails: as.Emails, HardPct: as.HardPct(), SoftPct: as.SoftPct(),
		})
	}

	bl := a.BlocklistFigure()
	out.BlocklistAvgListed = bl.AvgListed
	out.BlocklistNormalPct = bl.NormalShare * 100
	out.BlocklistRecoveryPct = a.BlocklistRecovery().RecoveryShare() * 100

	dur := a.Durations(s.Detections)
	out.AuthFixMeanDays = dur.AuthDKIMSPF.MeanDays()
	out.MXFixMedianDays = dur.MXRecords.MedianDays()
	out.FullFixMedianDays = dur.MailboxFull.MedianDays()

	lat := a.LatencyByCountry(1)
	out.GlobalMedianLatS = lat.GlobalMedianMS / 1000
	out.STARTTLSTop100Pct = a.STARTTLS().Top100Share * 100

	fd := a.FilterDisagreement()
	out.FilterSenderDisPct = fd.SenderDisagreeShare() * 100
	out.FilterRcvrDisPct = fd.ReceiverDisagreeShare() * 100

	det := s.Detections
	out.GuessHitRatePct = stats.Pct(det.GuessHits, det.GuessTargets)
	out.BulkHardPct = stats.Pct(det.BulkHard, det.BulkEmails)
	out.UsernameTypos = len(det.UsernameTypos)
	out.DomainTypos = len(det.DomainTypos)

	sq := s.Squat(squat.DefaultConfig())
	out.VulnerableDomains = sq.VulnerableCount
	out.VulnerableUsernames = sq.RegistrableCount
	out.UsernameVulnShare = stats.Pct(sq.RegistrableCount, sq.ProbedUsernames)
	out.SquatExposedSenders = sq.DomainSenders
	out.SquatExposedEmails = sq.DomainEmails
	out.ReRegisteredAtAudit = sq.ReRegistered
	out.RegistrantChangedNum = sq.RegistrantChanged
	return out
}

// WriteJSON emits the summary as indented JSON.
func (sm Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sm)
}

// PaperTargets returns the published values for the fields of Summary
// that have direct paper anchors, keyed by JSON field name — used by
// regression tests and the -json consumers to compute deltas.
func PaperTargets() map[string]float64 {
	return map[string]float64{
		"non_bounced_pct":               87.07,
		"soft_bounced_pct":              4.82,
		"hard_bounced_pct":              8.11,
		"soft_avg_attempts":             3,
		"ndr_without_enhanced_code_pct": 28.79,
		"blocklist_normal_share_pct":    78.06,
		"blocklist_recovery_pct":        80.71,
		"auth_fix_mean_days":            12,
		"mailbox_full_fix_median_days":  86,
		"global_median_latency_s":       14.03,
		"starttls_top100_mandate_pct":   38,
		"filter_sender_disagree_pct":    46.49,
		"filter_receiver_disagree_pct":  39.46,
		"guess_hit_rate_pct":            0.91,
		"bulk_spam_hard_pct":            70.12,
	}
}
