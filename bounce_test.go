package bounce_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro"
	"repro/internal/dataset"
	"repro/internal/ndr"
	"repro/internal/squat"
	"repro/internal/world"
)

func tinyStudy(t *testing.T) *bounce.Study {
	t.Helper()
	return bounce.Run(bounce.Options{Scale: bounce.ScaleTiny})
}

func TestRunProducesConsistentStudy(t *testing.T) {
	s := tinyStudy(t)
	if s.Records.Len() == 0 || s.Records.Len() != len(s.Truths) {
		t.Fatalf("records=%d truths=%d", s.Records.Len(), len(s.Truths))
	}
	if s.Analysis == nil || s.Detections == nil {
		t.Fatal("analysis not built")
	}
	o := s.Analysis.Overview()
	if o.Total != s.Records.Len() {
		t.Errorf("overview total %d vs %d records", o.Total, s.Records.Len())
	}
	// The corpus must contain real bounces of both degrees.
	if o.SoftBounced == 0 || o.HardBounced == 0 {
		t.Errorf("degenerate corpus: %+v", o)
	}
}

func TestClassifierAgreesWithEngineTruth(t *testing.T) {
	// The analysis pipeline never sees the engine's ground truth; its
	// per-attempt type labels must still agree with it almost always
	// (the paper's EBRC operating point is >90%).
	s := tinyStudy(t)
	agree, total := 0, 0
	for i := 0; i < s.Records.Len(); i++ {
		c := s.Analysis.Classified[i]
		if c.Ambiguous {
			continue
		}
		for j, truthType := range s.Truths[i].AttemptTypes {
			if truthType == ndr.TNone { // accepted attempt
				continue
			}
			// Ambiguous attempt lines are excluded like the paper does.
			if c.AttemptTypes[j] == ndr.T16Unknown && truthType != ndr.T16Unknown {
				continue
			}
			total++
			if c.AttemptTypes[j] == truthType {
				agree++
			}
		}
	}
	if total == 0 {
		t.Fatal("no failed attempts to compare")
	}
	rate := float64(agree) / float64(total)
	if rate < 0.9 {
		t.Errorf("classifier agreement with ground truth %.4f < 0.90", rate)
	}
}

func TestWriteReportAllSections(t *testing.T) {
	s := tinyStudy(t)
	var buf bytes.Buffer
	if err := s.WriteReport(&buf, bounce.AllSections); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, anchor := range []string{
		"== Overview", "== Table 1", "== Table 2", "== Table 3",
		"== Table 4", "== Table 5", "== Table 6", "== Figure 4",
		"== Figure 5", "== Figure 6", "== Figure 7", "== Figure 8",
		"== Figure 10", "STARTTLS", "Attackers", "Typos", "squatting",
		"filter disagreement", "Recommendations",
	} {
		if !strings.Contains(out, anchor) {
			t.Errorf("report missing section %q", anchor)
		}
	}
}

func TestWriteReportUnknownSection(t *testing.T) {
	s := tinyStudy(t)
	var buf bytes.Buffer
	if err := s.WriteReport(&buf, []bounce.Section{"nonsense"}); err == nil {
		t.Error("unknown section should error")
	}
}

func TestGenerateMatchesRun(t *testing.T) {
	cfg := world.TinyConfig()
	_, records := bounce.Generate(cfg)
	s := bounce.Run(bounce.Options{Config: cfg})
	if len(records) != s.Records.Len() {
		t.Fatalf("Generate %d records vs Run %d", len(records), s.Records.Len())
	}
	for i := range records {
		if records[i].To != s.Records.At(i).To || records[i].FinalResult() != s.Records.At(i).FinalResult() {
			t.Fatalf("record %d differs between Generate and Run", i)
		}
	}
}

func TestDatasetRoundTripThroughJSONL(t *testing.T) {
	s := tinyStudy(t)
	var buf bytes.Buffer
	w := dataset.NewWriter(&buf)
	for i := 0; i < s.Records.Len(); i++ {
		if err := w.Write(s.Records.At(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	back, err := dataset.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != s.Records.Len() {
		t.Fatalf("round trip lost records: %d vs %d", len(back), s.Records.Len())
	}
	// Re-analysis of the round-tripped dataset gives identical degrees.
	a2 := bounce.Analyze(back, bounce.NewEnvironment(s.World))
	o1, o2 := s.Analysis.Overview(), a2.Overview()
	if o1.SoftBounced != o2.SoftBounced || o1.HardBounced != o2.HardBounced {
		t.Errorf("degrees changed across serialization: %+v vs %+v", o1, o2)
	}
}

func TestSquatFromStudy(t *testing.T) {
	s := tinyStudy(t)
	res := s.Squat(squat.DefaultConfig())
	if res == nil {
		t.Fatal("nil squat result")
	}
	// The tiny world has dead domains and typo traffic; the funnel must
	// find something.
	if res.VulnerableCount == 0 {
		t.Error("no vulnerable domains found in tiny world")
	}
}

func TestProxyRegionsExported(t *testing.T) {
	total := 0
	for _, r := range bounce.ProxyRegions() {
		total += r.Proxies
	}
	if total != 34 {
		t.Errorf("proxy fleet = %d", total)
	}
}

func TestConfigForScale(t *testing.T) {
	if bounce.ConfigForScale(bounce.ScaleTiny).TotalEmails >= bounce.ConfigForScale(bounce.ScaleSmall).TotalEmails {
		t.Error("tiny should be smaller than small")
	}
	if bounce.ConfigForScale(bounce.ScaleSmall).TotalEmails >= bounce.ConfigForScale(bounce.ScaleDefault).TotalEmails {
		t.Error("small should be smaller than default")
	}
}

func TestSummaryJSON(t *testing.T) {
	s := tinyStudy(t)
	sm := s.Summary()
	if sm.Emails != s.Records.Len() {
		t.Errorf("summary emails %d", sm.Emails)
	}
	if sm.NonBouncedPct+sm.SoftPct+sm.HardPct < 99.9 || sm.NonBouncedPct+sm.SoftPct+sm.HardPct > 100.1 {
		t.Errorf("degree percentages don't sum: %g", sm.NonBouncedPct+sm.SoftPct+sm.HardPct)
	}
	if len(sm.TypeSharePct) == 0 || len(sm.TopDomains) == 0 || len(sm.TopASes) == 0 {
		t.Error("summary missing sections")
	}
	var buf bytes.Buffer
	if err := sm.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back bounce.Summary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Emails != sm.Emails || back.TypeSharePct["T5"] != sm.TypeSharePct["T5"] {
		t.Error("summary JSON round trip mismatch")
	}
	// Paper anchors must reference real JSON fields.
	raw := map[string]any{}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for field := range bounce.PaperTargets() {
		if _, ok := raw[field]; !ok {
			t.Errorf("paper target field %q not in summary JSON", field)
		}
	}
}
