// Package bounce is the public API of the "Bounce in the Wild"
// reproduction (IMC 2024): it wires the world generator, the delivery
// engine, the Drain+EBRC classification pipeline, the analysis layer
// and the squatting scanner into a one-call study.
//
// The typical flow:
//
//	study := bounce.Run(bounce.Options{Scale: bounce.ScaleSmall})
//	study.WriteReport(os.Stdout, bounce.AllSections)
//
// or piecewise:
//
//	w, records := bounce.Generate(world.DefaultConfig())
//	a := bounce.Analyze(records, bounce.NewEnvironment(w))
//
// Everything is deterministic in the configured seed.
package bounce

import (
	"context"
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/delivery"
	"repro/internal/geo"
	"repro/internal/squat"
	"repro/internal/world"
)

// Scale selects a preset world size.
type Scale int

// Preset scales.
const (
	// ScaleDefault is the calibrated ~400K-email corpus used for the
	// headline reproduction.
	ScaleDefault Scale = iota
	// ScaleSmall is a ~100K-email corpus for faster interactive runs.
	ScaleSmall
	// ScaleTiny is a few thousand emails for tests and examples.
	ScaleTiny
)

// Options configures a study run.
type Options struct {
	// Scale picks a preset; Config (if non-zero TotalEmails) overrides
	// it entirely.
	Scale  Scale
	Config world.Config
	// Pipeline overrides the classification pipeline parameters.
	Pipeline analysis.PipelineConfig
	// PinProxy enables the greylist-friendly proxy-pinning ablation.
	PinProxy bool
	// MaxAttempts overrides Coremail's retry budget (default 5).
	MaxAttempts int
	// Workers is the delivery fan-out width (default 1). The dataset is
	// byte-identical for any value: delivery state is sharded by
	// receiver domain and records merge back in submission order.
	Workers int
}

// ConfigForScale returns the world config for a preset scale.
func ConfigForScale(s Scale) world.Config {
	switch s {
	case ScaleSmall:
		cfg := world.DefaultConfig()
		cfg.TotalEmails = 100_000
		return cfg
	case ScaleTiny:
		return world.TinyConfig()
	default:
		return world.DefaultConfig()
	}
}

// Study is a completed simulation + analysis.
type Study struct {
	World      *world.World
	Engine     *delivery.Engine
	Records    dataset.Records
	Truths     []delivery.Truth
	Analysis   *analysis.Analysis
	Detections *analysis.Detections

	partials *analysis.PartialSet // lazily built by Partials
}

// Generate builds a world and delivers its full 15-month workload,
// returning the Figure-3 records.
func Generate(cfg world.Config) (*world.World, []dataset.Record) {
	return GenerateParallel(cfg, 1)
}

// GenerateParallel is Generate with a delivery fan-out width; the
// records are byte-identical for any worker count.
func GenerateParallel(cfg world.Config, workers int) (*world.World, []dataset.Record) {
	w := world.New(cfg)
	e := delivery.New(w)
	var records []dataset.Record
	e.ParallelRun(workers, func(rec dataset.Record, _ *world.Submission, _ delivery.Truth) {
		records = append(records, rec)
	})
	return w, records
}

// NewEnvironment exposes a world's external services (geo, blocklist,
// leak corpus, DNS, registries) to the analysis layer — the services
// the paper consulted beside its passive dataset.
func NewEnvironment(w *world.World) *analysis.Environment {
	env := &analysis.Environment{
		Geo:         w.Geo,
		Blocklist:   w.Blocklist,
		Breach:      w.Breach,
		Resolver:    w.Resolver,
		Registry:    w.Registry,
		UserRegs:    w.UserRegs,
		ProxyRegion: make(map[string]string, len(w.Proxies)),
	}
	for _, p := range w.Proxies {
		env.ProxyIPs = append(env.ProxyIPs, p.IP)
		env.ProxyRegion[p.IP] = p.Region
	}
	return env
}

// Analyze classifies records with the default pipeline configuration.
func Analyze(records []dataset.Record, env *analysis.Environment) *analysis.Analysis {
	return analysis.New(records, env)
}

// Run executes a full study: generate, deliver, classify, detect.
func Run(opts Options) *Study {
	s, _ := RunCtx(context.Background(), opts)
	return s
}

// RunCtx is Run with cancellation: Ctrl-C (or any ctx cancellation)
// stops delivery at the next day-batch boundary instead of finishing
// the 15-month workload. The returned study covers the records
// delivered before the stop (identical to the same-length prefix of an
// uncancelled run); the error is ctx's when cancelled, nil otherwise.
func RunCtx(ctx context.Context, opts Options) (*Study, error) {
	cfg := opts.Config
	if cfg.TotalEmails == 0 {
		cfg = ConfigForScale(opts.Scale)
	}
	w := world.New(cfg)
	e := delivery.New(w)
	if opts.PinProxy {
		e.PinProxy = true
	}
	if opts.MaxAttempts > 0 {
		e.MaxAttempts = opts.MaxAttempts
	}
	s := &Study{World: w, Engine: e}
	pcfg := opts.Pipeline
	if pcfg.TopTemplates == 0 {
		pcfg = analysis.DefaultPipelineConfig()
	}
	// Delivery and pipeline training run concurrently: the engine
	// streams records through a bounded pipe (backpressured to analysis
	// speed) and the analysis trains Drain as they arrive, in the
	// deterministic merged submission order. On cancellation the engine
	// stops between days and closes the pipe; the analysis then drains
	// what was delivered and returns a partial study.
	pipe := dataset.NewPipe(256)
	errc := make(chan error, 1)
	go func() {
		errc <- e.ParallelRunCtx(ctx, opts.Workers, func(rec dataset.Record, _ *world.Submission, truth delivery.Truth) {
			s.Truths = append(s.Truths, truth)
			pipe.Write(&rec)
		})
		pipe.Close()
	}()
	s.Analysis = analysis.NewFromSource(pipe, pcfg, NewEnvironment(w))
	s.Records = s.Analysis.Records
	s.Detections = s.Analysis.Detect()
	return s, <-errc
}

// Squat runs the Section-5 squatting scan over the study.
func (s *Study) Squat(cfg squat.Config) *squat.Result {
	return squat.Scan(s.Analysis, s.Detections, cfg)
}

// ProxyRegions re-exports the fleet layout for callers that do not
// want to import internal packages.
func ProxyRegions() []geo.ProxyRegion { return geo.ProxyRegions }

// Section identifies one reproducible table or figure.
type Section string

// Report sections.
const (
	SecOverview Section = "overview"
	SecPipeline Section = "pipeline"
	SecTable1   Section = "table1"
	SecTable2   Section = "table2"
	SecTable3   Section = "table3"
	SecTable4   Section = "table4"
	SecTable5   Section = "table5"
	SecTable6   Section = "table6"
	SecFig4     Section = "fig4"
	SecFig5     Section = "fig5"
	SecFig6     Section = "fig6"
	SecFig7     Section = "fig7"
	SecFig8     Section = "fig8"
	SecFig10    Section = "fig10"
	SecSTARTTLS Section = "starttls"
	SecAttacker Section = "attackers"
	SecTypos    Section = "typos"
	SecSquat    Section = "squat"
	SecFilters  Section = "filters"
	SecAdvice   Section = "advice"
)

// AllSections lists every report section in presentation order.
var AllSections = []Section{
	SecOverview, SecPipeline, SecTable1, SecTable2, SecTable3, SecTable4,
	SecTable5, SecTable6, SecFig4, SecFig5, SecFig6, SecFig7, SecFig8,
	SecFig10, SecSTARTTLS, SecAttacker, SecFilters, SecTypos, SecSquat,
	SecAdvice,
}

// WriteReport renders the requested sections to w.
func (s *Study) WriteReport(w io.Writer, sections []Section) error {
	for _, sec := range sections {
		if err := s.writeSection(w, sec); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
