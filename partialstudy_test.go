package bounce_test

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/analysis"
	"repro/internal/dataset"
)

// TestPartialStudyMatchesStudyBytes: rendering through the partial
// aggregates must reproduce the full study's report byte-for-byte on
// every partial-renderable section — the invariant the coordinator
// tier stands on.
func TestPartialStudyMatchesStudyBytes(t *testing.T) {
	st := tinyStudy(t)
	var want bytes.Buffer
	if err := st.WriteReport(&want, bounce.PartialSections); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := bounce.NewPartialStudy(st.Partials()).WriteReport(&got, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("partial-study report diverges from study report (%d vs %d bytes)",
			got.Len(), want.Len())
	}
	if want.Len() == 0 {
		t.Fatal("empty reference report")
	}
}

// TestShardedPartialReportMatchesBatch: partition the corpus by
// substream ownership, analyze shards independently, merge their
// wire-encoded partials in random orders — the merged report must be
// byte-identical to the unsharded batch report every time.
func TestShardedPartialReportMatchesBatch(t *testing.T) {
	st := tinyStudy(t)
	records := st.Records.Flatten()
	env := bounce.NewEnvironment(st.World)

	a := analysis.NewFromSource(dataset.NewSliceSource(records), analysis.DefaultPipelineConfig(), env)
	ref := &bounce.Study{Records: a.Records, Analysis: a}
	ref.Detections = a.Detect()
	var want bytes.Buffer
	if err := ref.WriteReport(&want, bounce.PartialSections); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 4, 16} {
		parts := make([][]dataset.Record, n)
		for i := range records {
			own := analysis.OwnerOf(&records[i], n)
			parts[own] = append(parts[own], records[i])
		}
		blobs := make([][]byte, n)
		for i, part := range parts {
			blobs[i] = analysis.New(part, env).Partials().Marshal()
		}
		for trial := 0; trial < 3; trial++ {
			order := rng.Perm(n)
			var merged *analysis.PartialSet
			for _, i := range order {
				ps, err := analysis.UnmarshalPartialSet(blobs[i], env)
				if err != nil {
					t.Fatalf("shards=%d: decode shard %d: %v", n, i, err)
				}
				if merged == nil {
					merged = ps
					continue
				}
				if err := merged.Merge(ps); err != nil {
					t.Fatalf("shards=%d: merge shard %d: %v", n, i, err)
				}
			}
			var got bytes.Buffer
			if err := bounce.NewPartialStudy(merged).WriteReport(&got, nil); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("shards=%d order=%v: merged report diverges from batch (%d vs %d bytes)",
					n, order, got.Len(), want.Len())
			}
		}
	}
}

// TestPartialStudyRejectsCorpusSections: squat and advice need the
// raw corpus no partial set carries; asking for them is an error, not
// silently absent output.
func TestPartialStudyRejectsCorpusSections(t *testing.T) {
	st := tinyStudy(t)
	ps := bounce.NewPartialStudy(st.Partials())
	for _, sec := range []bounce.Section{bounce.SecSquat, bounce.SecAdvice} {
		if err := ps.WriteReport(io.Discard, []bounce.Section{sec}); err == nil {
			t.Errorf("section %q rendered from partials; want error", sec)
		}
	}
	for _, sec := range bounce.PartialSections {
		if sec == bounce.SecSquat || sec == bounce.SecAdvice {
			t.Fatalf("PartialSections contains %q", sec)
		}
	}
}
